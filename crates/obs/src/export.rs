//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Subsystems describe their metrics as a list of [`MetricFamily`]
//! values — a name, help text, a [`MetricKind`], and labeled
//! [`Sample`]s — and the two renderers turn that one model into either
//! Prometheus text-exposition format ([`prometheus_text`]) or a JSON
//! document ([`json_text`]). Both are hand-rolled (no `serde` in the
//! offline build) and handle the full escaping rules of their formats.

/// Prometheus metric type, controlling the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value that can go up or down.
    Gauge,
    /// Cumulative-bucket distribution (`_bucket`/`_count`/`_sum` samples).
    Histogram,
}

impl MetricKind {
    /// Lowercase Prometheus / JSON type name.
    pub const fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample row of a family: label set, optional name suffix
/// (`_bucket`, `_count`, `_sum` for histograms; empty otherwise), value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// `(label, value)` pairs, rendered in order.
    pub labels: Vec<(String, String)>,
    /// Metric-name suffix (`""`, `"_bucket"`, `"_count"`, `"_sum"`).
    pub suffix: &'static str,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Plain sample (no suffix) with the given labels.
    pub fn new(labels: Vec<(String, String)>, value: f64) -> Sample {
        Sample {
            labels,
            suffix: "",
            value,
        }
    }

    /// Suffixed sample (histogram `_bucket` / `_count` / `_sum` rows).
    pub fn suffixed(suffix: &'static str, labels: Vec<(String, String)>, value: f64) -> Sample {
        Sample {
            labels,
            suffix,
            value,
        }
    }
}

/// A named metric with help text and its sample rows.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`snake_case`, no suffix).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Prometheus type.
    pub kind: MetricKind,
    /// Sample rows. A family with no samples still renders its
    /// `# HELP` / `# TYPE` header (zero-count registrations stay visible).
    pub samples: Vec<Sample>,
}

impl MetricFamily {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        help: impl Into<String>,
        kind: MetricKind,
        samples: Vec<Sample>,
    ) -> MetricFamily {
        MetricFamily {
            name: name.into(),
            help: help.into(),
            kind,
            samples,
        }
    }
}

/// Format a sample value the way Prometheus text exposition expects:
/// integral values without a fractional part, non-finite values as
/// `+Inf` / `-Inf` / `NaN`, everything else via shortest-roundtrip
/// `f64` formatting.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape Prometheus `# HELP` text: `\` → `\\`, newline → `\n`.
fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render families in Prometheus text exposition format (version 0.0.4):
/// `# HELP` / `# TYPE` headers followed by one line per sample, with
/// label values escaped per the format's rules.
pub fn prometheus_text(families: &[MetricFamily]) -> String {
    let mut out = String::new();
    for fam in families {
        out.push_str("# HELP ");
        out.push_str(&fam.name);
        out.push(' ');
        out.push_str(&escape_help(&fam.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&fam.name);
        out.push(' ');
        out.push_str(fam.kind.label());
        out.push('\n');
        for s in &fam.samples {
            out.push_str(&fam.name);
            out.push_str(s.suffix);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_label(v));
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&fmt_value(s.value));
            out.push('\n');
        }
    }
    out
}

/// Escape a string for a JSON string literal (without the quotes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number for a sample value. JSON has no `Inf`/`NaN`, so
/// non-finite values render as `null`.
fn json_value(v: f64) -> String {
    if v.is_finite() {
        fmt_value(v)
    } else {
        "null".to_string()
    }
}

/// Render families as a JSON document:
///
/// ```json
/// {"families":[{"name":"...","help":"...","kind":"counter",
///   "samples":[{"labels":{"sim":"0"},"suffix":"","value":12}]}]}
/// ```
///
/// Strings are fully escaped; non-finite values become `null`.
pub fn json_text(families: &[MetricFamily]) -> String {
    let mut out = String::from("{\"families\":[");
    for (fi, fam) in families.iter().enumerate() {
        if fi > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(&escape_json(&fam.name));
        out.push_str("\",\"help\":\"");
        out.push_str(&escape_json(&fam.help));
        out.push_str("\",\"kind\":\"");
        out.push_str(fam.kind.label());
        out.push_str("\",\"samples\":[");
        for (si, s) in fam.samples.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str("{\"labels\":{");
            for (li, (k, v)) in s.labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":\"");
                out.push_str(&escape_json(v));
                out.push('"');
            }
            out.push_str("},\"suffix\":\"");
            out.push_str(s.suffix);
            out.push_str("\",\"value\":");
            out.push_str(&json_value(s.value));
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbl(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn prometheus_golden_counter() {
        let fams = vec![MetricFamily::new(
            "ambipla_requests_total",
            "Total requests submitted.",
            MetricKind::Counter,
            vec![
                Sample::new(lbl(&[("sim", "0"), ("epoch", "0")]), 42.0),
                Sample::new(lbl(&[("sim", "1"), ("epoch", "2")]), 7.0),
            ],
        )];
        let expected = "\
# HELP ambipla_requests_total Total requests submitted.
# TYPE ambipla_requests_total counter
ambipla_requests_total{sim=\"0\",epoch=\"0\"} 42
ambipla_requests_total{sim=\"1\",epoch=\"2\"} 7
";
        assert_eq!(prometheus_text(&fams), expected);
    }

    #[test]
    fn prometheus_golden_histogram() {
        let fams = vec![MetricFamily::new(
            "flush_latency_ns",
            "Flush latency.",
            MetricKind::Histogram,
            vec![
                Sample::suffixed("_bucket", lbl(&[("sim", "0"), ("le", "1024")]), 3.0),
                Sample::suffixed("_bucket", lbl(&[("sim", "0"), ("le", "+Inf")]), 5.0),
                Sample::suffixed("_count", lbl(&[("sim", "0")]), 5.0),
                Sample::suffixed("_sum", lbl(&[("sim", "0")]), 8192.0),
            ],
        )];
        let expected = "\
# HELP flush_latency_ns Flush latency.
# TYPE flush_latency_ns histogram
flush_latency_ns_bucket{sim=\"0\",le=\"1024\"} 3
flush_latency_ns_bucket{sim=\"0\",le=\"+Inf\"} 5
flush_latency_ns_count{sim=\"0\"} 5
flush_latency_ns_sum{sim=\"0\"} 8192
";
        assert_eq!(prometheus_text(&fams), expected);
    }

    #[test]
    fn prometheus_escapes_label_values_and_help() {
        let fams = vec![MetricFamily::new(
            "weird",
            "help with \\ backslash\nand newline",
            MetricKind::Gauge,
            vec![Sample::new(lbl(&[("name", "a\"b\\c\nd")]), 1.0)],
        )];
        let text = prometheus_text(&fams);
        assert!(text.contains("# HELP weird help with \\\\ backslash\\nand newline\n"));
        assert!(text.contains("weird{name=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn prometheus_zero_sample_family_keeps_header() {
        let fams = vec![MetricFamily::new(
            "empty_total",
            "No samples yet.",
            MetricKind::Counter,
            vec![],
        )];
        assert_eq!(
            prometheus_text(&fams),
            "# HELP empty_total No samples yet.\n# TYPE empty_total counter\n"
        );
    }

    #[test]
    fn prometheus_unlabeled_sample_has_no_braces() {
        let fams = vec![MetricFamily::new(
            "up",
            "Service liveness.",
            MetricKind::Gauge,
            vec![Sample::new(vec![], 1.0)],
        )];
        assert_eq!(
            prometheus_text(&fams),
            "# HELP up Service liveness.\n# TYPE up gauge\nup 1\n"
        );
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(-3.0), "-3");
        assert_eq!(fmt_value(0.5), "0.5");
        assert_eq!(fmt_value(0.1 + 0.2), "0.30000000000000004");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        // Large integral floats fall back to float formatting rather
        // than a lossy i64 cast.
        assert_eq!(fmt_value(1e18), "1000000000000000000");
    }

    #[test]
    fn json_golden() {
        let fams = vec![MetricFamily::new(
            "requests_total",
            "Total requests.",
            MetricKind::Counter,
            vec![Sample::new(lbl(&[("sim", "0")]), 3.0)],
        )];
        assert_eq!(
            json_text(&fams),
            "{\"families\":[{\"name\":\"requests_total\",\"help\":\"Total requests.\",\
             \"kind\":\"counter\",\"samples\":[{\"labels\":{\"sim\":\"0\"},\
             \"suffix\":\"\",\"value\":3}]}]}"
        );
    }

    #[test]
    fn json_escapes_strings_and_nulls_non_finite() {
        let fams = vec![MetricFamily::new(
            "m",
            "quote \" backslash \\ tab \t",
            MetricKind::Gauge,
            vec![Sample::new(lbl(&[("k", "v\n2")]), f64::INFINITY)],
        )];
        let text = json_text(&fams);
        assert!(text.contains("quote \\\" backslash \\\\ tab \\t"));
        assert!(text.contains("\"k\":\"v\\n2\""));
        assert!(text.contains("\"value\":null"));
    }

    #[test]
    fn json_empty_families_is_valid() {
        assert_eq!(json_text(&[]), "{\"families\":[]}");
    }
}
