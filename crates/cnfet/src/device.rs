//! Three-state ambipolar CNFET behavioural model.
//!
//! The device has two gates (Fig. 1 of the paper): the **control gate** (CG)
//! acts like a conventional MOSFET gate, while the **polarity gate** (PG)
//! electrostatically dopes the Schottky contact regions and thereby selects
//! whether the channel conducts electrons, holes, or nothing.

use std::fmt;

/// Nominal supply voltage of the technology, in volts.
///
/// The paper defines the always-off PG level as `V0 = VDD/2`; all voltage
/// thresholds below are expressed relative to this supply.
pub const VDD: f64 = 1.0;

/// Discrete polarity-gate programming level.
///
/// These are the three PG voltages of Section 2: `V+` (n-type), `V−`
/// (p-type) and `V0 = VDD/2` (always off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PgLevel {
    /// `V+`: high PG voltage — thins the Schottky barrier for electrons.
    VPlus,
    /// `V0 = VDD/2`: both barriers opaque — device always off.
    #[default]
    VZero,
    /// `V−`: low PG voltage — thins the Schottky barrier for holes.
    VMinus,
}

impl PgLevel {
    /// The analog PG voltage (in volts) this level programs.
    pub fn voltage(self) -> f64 {
        match self {
            PgLevel::VPlus => VDD,
            PgLevel::VZero => VDD / 2.0,
            PgLevel::VMinus => 0.0,
        }
    }

    /// Quantize an analog PG voltage back to the nearest level, with a
    /// guard band of ±`VDD/6` around `V0` (between the bands the behaviour
    /// is still classified to the closest level, matching the monotonic
    /// barrier-thinning physics).
    pub fn from_voltage(v: f64) -> PgLevel {
        let mid = VDD / 2.0;
        let guard = VDD / 6.0;
        if v > mid + guard {
            PgLevel::VPlus
        } else if v < mid - guard {
            PgLevel::VMinus
        } else {
            PgLevel::VZero
        }
    }

    /// The polarity this PG level programs.
    pub fn polarity(self) -> Polarity {
        match self {
            PgLevel::VPlus => Polarity::NType,
            PgLevel::VZero => Polarity::Off,
            PgLevel::VMinus => Polarity::PType,
        }
    }
}

impl fmt::Display for PgLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PgLevel::VPlus => "V+",
            PgLevel::VZero => "V0",
            PgLevel::VMinus => "V-",
        };
        write!(f, "{s}")
    }
}

/// Effective carrier polarity of a programmed device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Polarity {
    /// Electron conduction: behaves like an nFET (conducts on CG high).
    NType,
    /// Hole conduction: behaves like a pFET (conducts on CG low).
    PType,
    /// Both Schottky barriers opaque: never conducts.
    #[default]
    Off,
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Polarity::NType => "n",
            Polarity::PType => "p",
            Polarity::Off => "off",
        };
        write!(f, "{s}")
    }
}

/// Channel conduction state for a given (PG, CG) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Conduction {
    /// Low-resistance channel.
    On,
    /// High-resistance channel (only leakage flows).
    HighResistive,
}

impl Conduction {
    /// True if the channel conducts.
    pub fn is_on(self) -> bool {
        matches!(self, Conduction::On)
    }
}

/// One ambipolar CNFET: programmed PG level plus the switching rule.
///
/// # Example
///
/// ```
/// use cnfet::{AmbipolarCnfet, PgLevel};
///
/// let n = AmbipolarCnfet::new(PgLevel::VPlus);
/// assert!(n.conduction(true).is_on()); // n-type conducts on CG high
/// assert!(!n.conduction(false).is_on());
///
/// let p = AmbipolarCnfet::new(PgLevel::VMinus);
/// assert!(p.conduction(false).is_on()); // p-type conducts on CG low
///
/// let off = AmbipolarCnfet::new(PgLevel::VZero);
/// assert!(!off.conduction(true).is_on()); // dropped from the function
/// assert!(!off.conduction(false).is_on());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AmbipolarCnfet {
    pg: PgLevel,
}

impl AmbipolarCnfet {
    /// A device programmed to the given PG level.
    pub fn new(pg: PgLevel) -> AmbipolarCnfet {
        AmbipolarCnfet { pg }
    }

    /// The programmed PG level.
    pub fn pg_level(&self) -> PgLevel {
        self.pg
    }

    /// Reprogram the PG level.
    pub fn set_pg_level(&mut self, pg: PgLevel) {
        self.pg = pg;
    }

    /// The effective polarity.
    pub fn polarity(&self) -> Polarity {
        self.pg.polarity()
    }

    /// Channel state for a logic-level CG input.
    ///
    /// n-type conducts when CG is high, p-type when CG is low, `V0`-programmed
    /// devices never conduct. This is the digital abstraction of the
    /// transfer characteristics in [`crate::iv`].
    pub fn conduction(&self, cg_high: bool) -> Conduction {
        let on = match self.polarity() {
            Polarity::NType => cg_high,
            Polarity::PType => !cg_high,
            Polarity::Off => false,
        };
        if on {
            Conduction::On
        } else {
            Conduction::HighResistive
        }
    }

    /// Channel state for an analog CG voltage: the digital rule applied to a
    /// `VDD/2` threshold.
    pub fn conduction_analog(&self, v_cg: f64) -> Conduction {
        self.conduction(v_cg > VDD / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pg_levels_map_to_polarity() {
        assert_eq!(PgLevel::VPlus.polarity(), Polarity::NType);
        assert_eq!(PgLevel::VMinus.polarity(), Polarity::PType);
        assert_eq!(PgLevel::VZero.polarity(), Polarity::Off);
    }

    #[test]
    fn pg_voltage_roundtrip() {
        for level in [PgLevel::VPlus, PgLevel::VZero, PgLevel::VMinus] {
            assert_eq!(PgLevel::from_voltage(level.voltage()), level);
        }
    }

    #[test]
    fn quantization_guard_band() {
        assert_eq!(PgLevel::from_voltage(0.51), PgLevel::VZero);
        assert_eq!(PgLevel::from_voltage(0.49), PgLevel::VZero);
        assert_eq!(PgLevel::from_voltage(0.9), PgLevel::VPlus);
        assert_eq!(PgLevel::from_voltage(0.1), PgLevel::VMinus);
    }

    #[test]
    fn ntype_is_nfet_like() {
        let d = AmbipolarCnfet::new(PgLevel::VPlus);
        assert!(d.conduction(true).is_on());
        assert!(!d.conduction(false).is_on());
    }

    #[test]
    fn ptype_is_pfet_like() {
        let d = AmbipolarCnfet::new(PgLevel::VMinus);
        assert!(!d.conduction(true).is_on());
        assert!(d.conduction(false).is_on());
    }

    #[test]
    fn vzero_is_always_off() {
        let d = AmbipolarCnfet::new(PgLevel::VZero);
        for cg in [true, false] {
            assert!(!d.conduction(cg).is_on());
        }
    }

    #[test]
    fn default_device_is_off() {
        // Fresh (unprogrammed) arrays must not conduct: V0 is the default.
        let d = AmbipolarCnfet::default();
        assert_eq!(d.polarity(), Polarity::Off);
    }

    #[test]
    fn analog_cg_threshold() {
        let d = AmbipolarCnfet::new(PgLevel::VPlus);
        assert!(d.conduction_analog(0.8).is_on());
        assert!(!d.conduction_analog(0.2).is_on());
    }

    #[test]
    fn reprogramming_changes_behaviour() {
        let mut d = AmbipolarCnfet::new(PgLevel::VPlus);
        assert!(d.conduction(true).is_on());
        d.set_pg_level(PgLevel::VMinus);
        assert!(!d.conduction(true).is_on());
        assert!(d.conduction(false).is_on());
    }
}
