//! Device variability: diameter dispersion and metallic tubes.
//!
//! Carbon-nanotube processes are dominated by two variability sources the
//! paper's "unreliable devices" remark points at:
//!
//! * **diameter dispersion** — the bandgap of a semiconducting tube scales
//!   as `E_g ≈ 0.84 eV·nm / d`, so diameter spread modulates the Schottky
//!   barrier and hence the on-current (modelled log-normally around the
//!   nominal `i_on`);
//! * **metallic tubes** — a fraction of grown tubes have no bandgap at
//!   all; a crosspoint built on one conducts permanently (the stuck-on
//!   defect of the `fault` crate).
//!
//! The model feeds two consumers: defect rates for yield analysis, and the
//! **GNOR noise margin** — a wide dynamic NOR row must keep the sum of its
//! off-state leakages below the weakest single on-current, which bounds
//! the usable row width.

use crate::device::VDD;
use crate::iv::DeviceParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nominal CNT diameter, nanometres.
pub const NOMINAL_DIAMETER_NM: f64 = 1.5;

/// Statistical model of a CNT device population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariabilityModel {
    /// Relative standard deviation of the tube diameter (σ/d₀).
    pub diameter_sigma: f64,
    /// Probability that a tube is metallic (no bandgap).
    pub metallic_fraction: f64,
    /// Electrical baseline.
    pub params: DeviceParams,
}

/// One sampled device instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSample {
    /// Multiplier on the nominal on-current (log-normal).
    pub i_on_factor: f64,
    /// Multiplier on the nominal off-leakage.
    pub i_off_factor: f64,
    /// True if the tube is metallic: the device conducts permanently.
    pub is_metallic: bool,
}

impl VariabilityModel {
    /// A model with published-plausible defaults: 10 % diameter spread and
    /// 5 % metallic fraction (post-sorting growth).
    pub fn nominal() -> VariabilityModel {
        VariabilityModel {
            diameter_sigma: 0.10,
            metallic_fraction: 0.05,
            params: DeviceParams::nominal(),
        }
    }

    /// Replace the metallic fraction.
    ///
    /// # Panics
    ///
    /// Panics unless the fraction is in `[0, 1]`.
    pub fn with_metallic_fraction(mut self, fraction: f64) -> VariabilityModel {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        self.metallic_fraction = fraction;
        self
    }

    /// Replace the diameter spread.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_diameter_sigma(mut self, sigma: f64) -> VariabilityModel {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        self.diameter_sigma = sigma;
        self
    }

    /// Sample one device.
    pub fn sample(&self, rng: &mut StdRng) -> DeviceSample {
        let is_metallic = rng.gen_bool(self.metallic_fraction);
        // Diameter d = d0 (1 + σ·z); barrier ∝ 1/d; current ∝ exp(−ΔΦ/kT)
        // → log-normal in the diameter perturbation. Approximate with
        // exp(k·σ·z), k calibrated so ±3σ spans roughly a decade.
        let z = standard_normal(rng);
        let k = 0.8; // decade at 3σ with σ = 0.10 ⇒ k·3·0.10·ln10⁻¹ ≈ 1
        let i_on_factor = (k * self.diameter_sigma * z * std::f64::consts::LN_10 / 0.3).exp();
        // Leakage moves the opposite way (thinner barrier leaks more).
        let i_off_factor = 1.0 / i_on_factor.sqrt();
        DeviceSample {
            i_on_factor,
            i_off_factor,
            is_metallic,
        }
    }

    /// Sample `count` devices deterministically.
    pub fn sample_many(&self, count: usize, seed: u64) -> Vec<DeviceSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.sample(&mut rng)).collect()
    }

    /// Monte-Carlo noise margin of a `width`-input GNOR row: the ratio of
    /// the weakest single on-current to the worst-case sum of off-state
    /// leakages of the other devices on the row (metallic devices count as
    /// full on-current leaks and crush the margin).
    ///
    /// A margin above ~10 is comfortably functional; below ~1 the row
    /// cannot hold its precharged level.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `trials == 0`.
    pub fn gnor_noise_margin(&self, width: usize, trials: usize, seed: u64) -> f64 {
        assert!(width > 0, "row must have devices");
        assert!(trials > 0, "need at least one trial");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut worst: f64 = f64::INFINITY;
        for _ in 0..trials {
            let devices: Vec<DeviceSample> = (0..width).map(|_| self.sample(&mut rng)).collect();
            let min_on = devices
                .iter()
                .map(|d| {
                    if d.is_metallic {
                        self.params.i_on // metallic conducts fine — as a leak!
                    } else {
                        self.params.i_on * d.i_on_factor
                    }
                })
                .fold(f64::INFINITY, f64::min);
            // Conservative: every device on the row leaks simultaneously.
            let leak_sum: f64 = devices
                .iter()
                .map(|d| {
                    if d.is_metallic {
                        self.params.i_on
                    } else {
                        self.params.i_off * d.i_off_factor
                    }
                })
                .sum();
            let margin = min_on / leak_sum.max(1e-30);
            worst = worst.min(margin);
        }
        worst
    }

    /// Fraction of sampled devices that are stuck-on (metallic), for
    /// feeding the `fault` crate's defect rate.
    pub fn expected_stuck_on_rate(&self) -> f64 {
        self.metallic_fraction
    }

    /// The supply voltage the samples are referenced to.
    pub fn vdd(&self) -> f64 {
        VDD
    }
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0f64);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_gives_unit_factors() {
        let m = VariabilityModel::nominal()
            .with_diameter_sigma(0.0)
            .with_metallic_fraction(0.0);
        for s in m.sample_many(50, 1) {
            assert!((s.i_on_factor - 1.0).abs() < 1e-12);
            assert!(!s.is_metallic);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = VariabilityModel::nominal();
        assert_eq!(m.sample_many(20, 7), m.sample_many(20, 7));
        assert_ne!(m.sample_many(20, 7), m.sample_many(20, 8));
    }

    #[test]
    fn metallic_fraction_is_respected() {
        let m = VariabilityModel::nominal().with_metallic_fraction(0.3);
        let samples = m.sample_many(2000, 3);
        let metallic = samples.iter().filter(|s| s.is_metallic).count();
        let rate = metallic as f64 / samples.len() as f64;
        assert!((rate - 0.3).abs() < 0.05, "empirical metallic rate {rate}");
    }

    #[test]
    fn on_current_spread_is_about_a_decade_at_3sigma() {
        let m = VariabilityModel::nominal().with_metallic_fraction(0.0);
        let samples = m.sample_many(5000, 11);
        let max = samples.iter().map(|s| s.i_on_factor).fold(0.0, f64::max);
        let min = samples
            .iter()
            .map(|s| s.i_on_factor)
            .fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "spread too tight: {}", max / min);
        assert!(max / min < 300.0, "spread too wide: {}", max / min);
    }

    #[test]
    fn noise_margin_shrinks_with_row_width() {
        let m = VariabilityModel::nominal().with_metallic_fraction(0.0);
        let narrow = m.gnor_noise_margin(4, 50, 5);
        let wide = m.gnor_noise_margin(64, 50, 5);
        assert!(narrow > wide, "narrow {narrow} vs wide {wide}");
        assert!(narrow > 10.0, "a 4-wide row must be comfortably functional");
    }

    #[test]
    fn metallic_tube_crushes_the_margin() {
        let clean = VariabilityModel::nominal().with_metallic_fraction(0.0);
        let dirty = VariabilityModel::nominal().with_metallic_fraction(0.5);
        let clean_margin = clean.gnor_noise_margin(8, 40, 9);
        let dirty_margin = dirty.gnor_noise_margin(8, 40, 9);
        assert!(dirty_margin < clean_margin / 10.0);
        assert!(
            dirty_margin <= 1.0 + 1e-9,
            "a metallic leak ties the margin"
        );
    }

    #[test]
    #[should_panic(expected = "fraction in [0,1]")]
    fn bad_fraction_rejected() {
        let _ = VariabilityModel::nominal().with_metallic_fraction(1.5);
    }
}
