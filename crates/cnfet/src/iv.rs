//! First-order analytic I–V model of the ambipolar CNFET.
//!
//! The model reproduces the qualitative transfer characteristics measured by
//! Lin et al. (IEDM 2004): two conduction branches (electron branch towards
//! high PG voltage, hole branch towards low PG voltage) separated by a
//! conduction minimum at `V0 = VDD/2` — the "V-shaped" ambipolar curve.
//!
//! Current through a Schottky-barrier CNFET is dominated by tunnelling
//! through the contact barriers; electrostatic gating by the PG thins the
//! barrier roughly exponentially with overdrive. We model each branch as
//!
//! ```text
//! I(v_pg) = i_on · T(|v_pg − V0| − w/2)            (branch overdrive)
//! T(x)    = 1 / (1 + exp(−x / s))                  (barrier transparency)
//! ```
//!
//! plus a floor leakage `i_off`. This is deliberately *not* a TCAD model:
//! the paper consumes the device only through its on-resistance, its off
//! leakage and its capacitances, which are exactly the quantities exposed
//! here. The defaults are loosely calibrated to the ~µA on-currents and
//! nA-scale minima reported for ambipolar CNT devices.

use crate::device::{PgLevel, Polarity, VDD};

/// Electrical parameters of one ambipolar CNFET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Branch saturation on-current, amperes.
    pub i_on: f64,
    /// Residual off-state leakage, amperes.
    pub i_off: f64,
    /// Transparency slope `s` of the barrier-thinning sigmoid, volts.
    pub slope: f64,
    /// Width of the central off window around `V0`, volts.
    pub off_window: f64,
    /// Gate capacitance seen by one gate (CG or PG), farads.
    pub c_gate: f64,
    /// Wire capacitance per basic-cell pitch, farads.
    pub c_wire_per_cell: f64,
}

impl DeviceParams {
    /// Defaults loosely calibrated to published ambipolar CNT devices:
    /// `i_on` = 5 µA, `i_off` = 1 nA, `s` = 25 mV, off window = 400 mV,
    /// `c_gate` = 50 aF, wire = 20 aF per cell pitch.
    pub fn nominal() -> DeviceParams {
        DeviceParams {
            i_on: 5e-6,
            i_off: 1e-9,
            slope: 0.025,
            off_window: 0.4,
            c_gate: 50e-18,
            c_wire_per_cell: 20e-18,
        }
    }

    /// Drain current (amperes) for analog PG and CG voltages.
    ///
    /// The CG gates the selected branch like a conventional FET: the branch
    /// current is multiplied by the CG transparency for the carrier type the
    /// PG selected.
    pub fn current(&self, v_pg: f64, v_cg: f64) -> f64 {
        let mid = VDD / 2.0;
        // Electron branch: grows as PG rises above V0; gated by CG high.
        let e_over = (v_pg - mid) - self.off_window / 2.0;
        let e_branch =
            self.i_on * sigmoid(e_over / self.slope) * sigmoid((v_cg - mid) / self.slope);
        // Hole branch: grows as PG falls below V0; gated by CG low.
        let h_over = (mid - v_pg) - self.off_window / 2.0;
        let h_branch =
            self.i_on * sigmoid(h_over / self.slope) * sigmoid((mid - v_cg) / self.slope);
        self.i_off + e_branch + h_branch
    }

    /// Transfer curve `I(v_pg)` at fixed CG, as `(v_pg, current)` samples.
    ///
    /// This regenerates Fig. 1's qualitative content: sweeping the PG shows
    /// the p branch, the central minimum at `V0`, and the n branch.
    pub fn pg_sweep(&self, v_cg: f64, points: usize) -> Vec<IvPoint> {
        assert!(points >= 2, "a sweep needs at least two points");
        (0..points)
            .map(|k| {
                let v_pg = VDD * k as f64 / (points - 1) as f64;
                IvPoint {
                    v_pg,
                    v_cg,
                    current: self.current(v_pg, v_cg),
                }
            })
            .collect()
    }

    /// On-resistance (ohms) of a programmed device conducting at full drive.
    ///
    /// # Panics
    ///
    /// Panics if the device polarity is `Off` (an off device has no
    /// meaningful on-resistance).
    pub fn r_on(&self, polarity: Polarity) -> f64 {
        let v_cg = match polarity {
            Polarity::NType => VDD,
            Polarity::PType => 0.0,
            Polarity::Off => panic!("off device has no on-resistance"),
        };
        let v_pg = match polarity {
            Polarity::NType => PgLevel::VPlus.voltage(),
            Polarity::PType => PgLevel::VMinus.voltage(),
            Polarity::Off => unreachable!(),
        };
        VDD / self.current(v_pg, v_cg)
    }

    /// Off-state resistance (ohms): the supply over the conduction minimum.
    pub fn r_off(&self) -> f64 {
        VDD / self.current(PgLevel::VZero.voltage(), VDD)
    }

    /// On/off current ratio between a fully-driven n device and the `V0`
    /// minimum — the figure of merit that makes the third state usable.
    pub fn on_off_ratio(&self) -> f64 {
        self.current(PgLevel::VPlus.voltage(), VDD) / self.current(PgLevel::VZero.voltage(), VDD)
    }

    /// RC time constant (seconds) of one device driving `fanout_cells` cell
    /// pitches of wire plus one gate load.
    pub fn tau(&self, polarity: Polarity, fanout_cells: usize) -> f64 {
        let c = self.c_gate + self.c_wire_per_cell * fanout_cells as f64;
        self.r_on(polarity) * c
    }
}

impl Default for DeviceParams {
    fn default() -> DeviceParams {
        DeviceParams::nominal()
    }
}

/// One sample of a transfer-curve sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvPoint {
    /// Polarity-gate voltage, volts.
    pub v_pg: f64,
    /// Control-gate voltage, volts.
    pub v_cg: f64,
    /// Drain current, amperes.
    pub current: f64,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambipolar_curve_is_v_shaped() {
        let p = DeviceParams::nominal();
        // At CG high: current high at V+ (n branch), low at V0.
        let i_plus = p.current(VDD, VDD);
        let i_zero = p.current(VDD / 2.0, VDD);
        assert!(i_plus / i_zero > 100.0, "n branch should dominate V0");
        // At CG low: current high at V− (p branch), low at V0.
        let i_minus = p.current(0.0, 0.0);
        let i_zero_low = p.current(VDD / 2.0, 0.0);
        assert!(i_minus / i_zero_low > 100.0, "p branch should dominate V0");
    }

    #[test]
    fn cg_gates_the_selected_branch() {
        let p = DeviceParams::nominal();
        // n-programmed device: CG low must cut the current.
        let on = p.current(VDD, VDD);
        let off = p.current(VDD, 0.0);
        assert!(on / off > 100.0);
        // p-programmed device: CG high must cut the current.
        let on_p = p.current(0.0, 0.0);
        let off_p = p.current(0.0, VDD);
        assert!(on_p / off_p > 100.0);
    }

    #[test]
    fn v0_off_under_both_cg_levels() {
        // The paper's key property: at PG = V0 the device is off no matter
        // what the logic input does.
        let p = DeviceParams::nominal();
        for v_cg in [0.0, VDD] {
            let i = p.current(VDD / 2.0, v_cg);
            assert!(i < 10.0 * p.i_off, "V0 leakage too high at CG={v_cg}");
        }
    }

    #[test]
    fn sweep_minimum_is_near_v0() {
        let p = DeviceParams::nominal();
        let sweep = p.pg_sweep(VDD, 101);
        let min = sweep
            .iter()
            .min_by(|a, b| a.current.total_cmp(&b.current))
            .unwrap();
        // With CG high, only the n branch is gated on; minimum sits at the
        // low-PG end of the off window or below V0.
        assert!(min.v_pg <= VDD / 2.0 + 0.05);
        assert_eq!(sweep.len(), 101);
    }

    #[test]
    fn on_off_ratio_is_large() {
        assert!(DeviceParams::nominal().on_off_ratio() > 1e3);
    }

    #[test]
    fn r_on_is_symmetricish() {
        let p = DeviceParams::nominal();
        let rn = p.r_on(Polarity::NType);
        let rp = p.r_on(Polarity::PType);
        assert!((rn / rp - 1.0).abs() < 0.01, "branches are symmetric");
        assert!(rn > 0.0);
        assert!(p.r_off() / rn > 100.0);
    }

    #[test]
    #[should_panic(expected = "no on-resistance")]
    fn r_on_of_off_device_panics() {
        let _ = DeviceParams::nominal().r_on(Polarity::Off);
    }

    #[test]
    fn tau_scales_with_fanout() {
        let p = DeviceParams::nominal();
        let t1 = p.tau(Polarity::NType, 1);
        let t10 = p.tau(Polarity::NType, 10);
        assert!(t10 > t1);
        assert!(t1 > 0.0);
    }
}
