//! Ambipolar carbon-nanotube FET (CNFET) device substrate.
//!
//! Behavioural and first-order electrical model of the double-gate ambipolar
//! CNFET of Lin et al. (IEDM 2004) in the self-aligned two-top-gate variant
//! (Javey et al., Nano Letters 2004) used by the DAC 2008 paper:
//!
//! * a **control gate (CG)** over region A switches the channel on and off,
//! * a **polarity gate (PG)** over region B (the Schottky contacts) selects
//!   the carrier type: a high PG voltage (`V+`) thins the barrier for
//!   electrons (n-type), a low PG voltage (`V−`) thins it for holes
//!   (p-type), and the midpoint `V0 = VDD/2` leaves both barriers opaque —
//!   the device is off regardless of CG.
//!
//! The paper uses the device strictly as a **three-state programmable
//! switch** plus an RC load, so this crate exposes exactly those knobs:
//!
//! * [`Polarity`] / [`PgLevel`] — the three programmed states,
//! * [`AmbipolarCnfet`] — conduction as a function of PG and CG
//!   ([`device`]), with an analytic I–V model for Fig. 1-style sweeps
//!   ([`iv`]),
//! * [`ChargeNode`] — the stored-charge PG node with leakage and refresh
//!   ([`charge`]),
//! * [`ProgrammingMatrix`] — the row/column (`VSelR,i`, `VSelC,j`)
//!   cell-by-cell configuration protocol of Fig. 3 ([`programming`]),
//! * [`CnfetTech`] — lithography-relative layout/scaling rules giving the
//!   60 L² contacted basic cell of Table 1 ([`tech`]).

pub mod charge;
pub mod device;
pub mod energy;
pub mod iv;
pub mod programming;
pub mod tech;
pub mod variability;

pub use charge::ChargeNode;
pub use device::{AmbipolarCnfet, Conduction, PgLevel, Polarity};
pub use energy::EnergyModel;
pub use iv::{DeviceParams, IvPoint};
pub use programming::{ProgramError, ProgrammingMatrix, SelectLine};
pub use tech::{CellGeometry, CnfetTech};
pub use variability::{DeviceSample, VariabilityModel};
