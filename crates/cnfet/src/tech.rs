//! Lithography-relative layout rules for the ambipolar CNFET basic cell.
//!
//! Section 5 of the paper estimates the area of the **contacted basic cell**
//! (one programmable crosspoint, including its share of wires and contacts)
//! in units of the lithography resolution `L`, following the
//! misaligned-CNT-immune layout rules of Patil et al. (DAC 2007) for the
//! CNFET and the ITRS for the Flash/EEPROM comparison cells:
//!
//! | technology | contacted cell |
//! |------------|----------------|
//! | Flash      | 40 L²          |
//! | EEPROM     | 100 L²         |
//! | ambipolar CNFET | 60 L²     |
//!
//! The CNFET cell is 50 % larger than Flash (the second, polarity gate and
//! its storage node cost one extra wire pitch of cell height) and 40 %
//! smaller than EEPROM (no double-poly tunnel structure). This module keeps
//! those numbers as explicit width × height geometries so that PLA planes
//! can be priced in both `L²` and physical `nm²`.

use std::fmt;

/// Rectangular contacted-cell geometry in lithography units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellGeometry {
    /// Cell width along the input-line direction, in `L`.
    pub width_l: u32,
    /// Cell height along the product-line direction, in `L`.
    pub height_l: u32,
}

impl CellGeometry {
    /// Cell area in `L²`.
    pub fn area_l2(&self) -> u32 {
        self.width_l * self.height_l
    }
}

impl fmt::Display for CellGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}L x {}L = {} L^2",
            self.width_l,
            self.height_l,
            self.area_l2()
        )
    }
}

/// Technology parameters of an ambipolar-CNFET array process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnfetTech {
    /// Lithography resolution `L`, nanometres.
    pub litho_nm: f64,
    /// Contacted basic-cell geometry.
    pub cell: CellGeometry,
    /// Metal wire pitch in `L` (one wire + one space).
    pub wire_pitch_l: u32,
}

impl CnfetTech {
    /// The paper's ambipolar-CNFET cell: 6 L × 10 L = 60 L².
    ///
    /// Width: CNT channel + 2 contacts at the misaligned-immune pitch.
    /// Height: control-gate track, polarity-gate track (the extra track a
    /// single-gate Flash cell does not pay), and the product line.
    pub fn nominal(litho_nm: f64) -> CnfetTech {
        assert!(
            litho_nm > 0.0 && litho_nm.is_finite(),
            "lithography pitch must be positive"
        );
        CnfetTech {
            litho_nm,
            cell: CellGeometry {
                width_l: 6,
                height_l: 10,
            },
            wire_pitch_l: 2,
        }
    }

    /// Basic-cell area in `L²` (60 for the nominal cell, Table 1 row 1).
    pub fn cell_area_l2(&self) -> u32 {
        self.cell.area_l2()
    }

    /// Basic-cell area in nm².
    pub fn cell_area_nm2(&self) -> f64 {
        self.cell_area_l2() as f64 * self.litho_nm * self.litho_nm
    }

    /// Physical area (nm²) of an array of `rows × cols` contacted cells.
    pub fn array_area_nm2(&self, rows: usize, cols: usize) -> f64 {
        self.cell_area_nm2() * (rows * cols) as f64
    }

    /// Physical length (nm) of a wire spanning `cells` cell pitches along
    /// the input-line direction.
    pub fn wire_length_nm(&self, cells: usize) -> f64 {
        cells as f64 * self.cell.width_l as f64 * self.litho_nm
    }
}

/// Comparison cells used by Table 1.
pub mod comparison {
    use super::CellGeometry;

    /// ITRS-derived NOR-Flash contacted cell: 5 L × 8 L = 40 L².
    pub const FLASH: CellGeometry = CellGeometry {
        width_l: 5,
        height_l: 8,
    };

    /// ITRS-derived EEPROM (FLOTOX two-transistor) contacted cell:
    /// 10 L × 10 L = 100 L².
    pub const EEPROM: CellGeometry = CellGeometry {
        width_l: 10,
        height_l: 10,
    };

    /// Ambipolar-CNFET contacted cell: 6 L × 10 L = 60 L².
    pub const CNFET: CellGeometry = CellGeometry {
        width_l: 6,
        height_l: 10,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cell_areas() {
        assert_eq!(comparison::FLASH.area_l2(), 40);
        assert_eq!(comparison::EEPROM.area_l2(), 100);
        assert_eq!(comparison::CNFET.area_l2(), 60);
    }

    #[test]
    fn cnfet_vs_flash_and_eeprom_ratios() {
        // "The CNFET basic cell is 50% larger than the Flash and 40% smaller
        // than the EEPROM basic cell."
        let cnfet = comparison::CNFET.area_l2() as f64;
        let flash = comparison::FLASH.area_l2() as f64;
        let eeprom = comparison::EEPROM.area_l2() as f64;
        assert!((cnfet / flash - 1.5).abs() < 1e-12);
        assert!((cnfet / eeprom - 0.6).abs() < 1e-12);
    }

    #[test]
    fn nominal_tech_matches_comparison_cell() {
        let t = CnfetTech::nominal(32.0);
        assert_eq!(t.cell_area_l2(), 60);
        assert_eq!(t.cell, comparison::CNFET);
    }

    #[test]
    fn physical_area_scales_quadratically() {
        let a32 = CnfetTech::nominal(32.0).cell_area_nm2();
        let a16 = CnfetTech::nominal(16.0).cell_area_nm2();
        assert!((a32 / a16 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn array_area_is_cells_times_cell_area() {
        let t = CnfetTech::nominal(32.0);
        let a = t.array_area_nm2(10, 20);
        assert!((a - 200.0 * t.cell_area_nm2()).abs() < 1e-6);
    }

    #[test]
    fn wire_length_follows_cell_pitch() {
        let t = CnfetTech::nominal(10.0);
        assert!((t.wire_length_nm(3) - 180.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lithography pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = CnfetTech::nominal(0.0);
    }

    #[test]
    fn geometry_display() {
        assert_eq!(comparison::CNFET.to_string(), "6L x 10L = 60 L^2");
    }
}
