//! Switching-energy model of dynamic GNOR arrays.
//!
//! Dynamic logic pays `C·VDD²` for every line that discharges during
//! evaluate and is re-charged during precharge. The energy of a PLA cycle
//! is therefore the sum of the line capacitances weighted by their
//! **switching activity** (the probability that the line discharges).
//! Configuration adds a one-off programming energy per device.

use crate::device::VDD;
use crate::iv::DeviceParams;

/// Energy model over the device capacitances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Device electricals (capacitances).
    pub params: DeviceParams,
    /// Supply voltage, volts.
    pub vdd: f64,
}

impl EnergyModel {
    /// Model at the nominal device parameters and supply.
    pub fn nominal() -> EnergyModel {
        EnergyModel {
            params: DeviceParams::nominal(),
            vdd: VDD,
        }
    }

    /// Capacitance (farads) of one dynamic line spanning `span_cells`
    /// cells and loading `fanout` gates.
    pub fn line_capacitance(&self, span_cells: usize, fanout: usize) -> f64 {
        self.params.c_wire_per_cell * span_cells as f64 + self.params.c_gate * fanout.max(1) as f64
    }

    /// Energy of one full discharge+recharge of a line (joules).
    pub fn line_switch_energy(&self, span_cells: usize, fanout: usize) -> f64 {
        self.line_capacitance(span_cells, fanout) * self.vdd * self.vdd
    }

    /// Mean energy per precharge/evaluate cycle of a two-plane PLA with
    /// `products` rows over `inputs` columns and `outputs` lines over
    /// `products` columns.
    ///
    /// `p1_activity` / `p2_activity` are the per-line discharge
    /// probabilities (a GNOR product line discharges unless its product is
    /// true — typically high; an output line discharges when the output's
    /// complement is low).
    ///
    /// # Panics
    ///
    /// Panics unless both activities are in `[0, 1]`.
    pub fn pla_cycle_energy(
        &self,
        inputs: usize,
        outputs: usize,
        products: usize,
        p1_activity: f64,
        p2_activity: f64,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&p1_activity), "activity in [0,1]");
        assert!((0.0..=1.0).contains(&p2_activity), "activity in [0,1]");
        let plane1 = products as f64 * p1_activity * self.line_switch_energy(inputs, 1);
        let plane2 = outputs as f64 * p2_activity * self.line_switch_energy(products, 1);
        plane1 + plane2
    }

    /// One-off programming energy of an array with `devices` crosspoints:
    /// each PG node is charged once through the select network.
    pub fn programming_energy(&self, devices: usize) -> f64 {
        devices as f64 * self.params.c_gate * self.vdd * self.vdd
    }

    /// Energy advantage of the GNOR PLA over a classical PLA implementing
    /// the same `(inputs, outputs, products)` at equal activities: the
    /// classical input plane spans `2·inputs` columns per product line.
    pub fn gnor_over_classical_ratio(&self, inputs: usize, outputs: usize, products: usize) -> f64 {
        let act = 0.5;
        let gnor = self.pla_cycle_energy(inputs, outputs, products, act, act);
        let classical_p1 = products as f64 * act * self.line_switch_energy(2 * inputs, 1);
        let classical_p2 = outputs as f64 * act * self.line_switch_energy(products, 1);
        gnor / (classical_p1 + classical_p2)
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_energy_is_cv2() {
        let m = EnergyModel::nominal();
        let c = m.line_capacitance(10, 2);
        assert!((m.line_switch_energy(10, 2) - c * m.vdd * m.vdd).abs() < 1e-30);
    }

    #[test]
    fn energy_scales_with_array_size() {
        let m = EnergyModel::nominal();
        let small = m.pla_cycle_energy(4, 2, 8, 0.5, 0.5);
        let large = m.pla_cycle_energy(16, 8, 64, 0.5, 0.5);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn zero_activity_costs_nothing() {
        let m = EnergyModel::nominal();
        assert_eq!(m.pla_cycle_energy(8, 4, 16, 0.0, 0.0), 0.0);
    }

    #[test]
    fn gnor_beats_classical_per_cycle() {
        // Single-column inputs halve the plane-1 wire capacitance: ratio
        // strictly below 1 for any shape.
        let m = EnergyModel::nominal();
        for (i, o, p) in [(9usize, 1usize, 46usize), (10, 12, 25), (17, 16, 52)] {
            let r = m.gnor_over_classical_ratio(i, o, p);
            assert!(r < 1.0, "shape {i}/{o}/{p}: ratio {r}");
            assert!(r > 0.4, "shape {i}/{o}/{p}: ratio {r} implausibly low");
        }
    }

    #[test]
    fn programming_energy_counts_devices() {
        let m = EnergyModel::nominal();
        let e1 = m.programming_energy(100);
        let e2 = m.programming_energy(200);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plausible_femto_joule_scale() {
        // A mid-size PLA should burn femtojoules per cycle, not nano or
        // atto — catches capacitance unit errors.
        let m = EnergyModel::nominal();
        let e = m.pla_cycle_energy(10, 6, 25, 0.7, 0.5);
        assert!(e > 1e-18, "too small: {e}");
        assert!(e < 1e-12, "too large: {e}");
    }

    #[test]
    #[should_panic(expected = "activity in [0,1]")]
    fn bad_activity_rejected() {
        let _ = EnergyModel::nominal().pla_cycle_energy(4, 2, 4, 1.5, 0.0);
    }
}
