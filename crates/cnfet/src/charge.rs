//! Stored-charge polarity-gate node.
//!
//! Section 4 of the paper avoids one routed wire per polarity gate by
//! **storing a charge** on every PG during the configuration phase ("a charge
//! corresponding to the voltage of the wished polarity is saved on every
//! PG"). That makes the PG a dynamic node, like a DRAM cell: it leaks and
//! must be refreshed. This module models that node: programming, exponential
//! leakage towards the floating midpoint, readback quantization and refresh
//! scheduling.

use crate::device::{PgLevel, VDD};

/// A dynamic storage node holding one polarity-gate voltage.
///
/// Leakage relaxes the stored voltage exponentially towards `VDD/2` (the
/// equilibrium of a floating node between the two plates), which is also the
/// *always-off* level — so an unrefreshed array fails safe: devices drop out
/// of the logic function instead of flipping polarity.
///
/// # Example
///
/// ```
/// use cnfet::{ChargeNode, PgLevel};
///
/// let mut node = ChargeNode::new(1e-3); // 1 ms retention
/// node.program(PgLevel::VPlus);
/// assert_eq!(node.read_level(), PgLevel::VPlus);
/// node.advance(5e-3); // five time constants later…
/// assert_eq!(node.read_level(), PgLevel::VZero); // …the device is off
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeNode {
    voltage: f64,
    tau: f64,
    age: f64,
}

impl ChargeNode {
    /// A fresh (unprogrammed) node with retention time constant `tau`
    /// seconds. Fresh nodes sit at the `V0` equilibrium.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is not strictly positive and finite.
    pub fn new(tau: f64) -> ChargeNode {
        assert!(tau > 0.0 && tau.is_finite(), "retention must be positive");
        ChargeNode {
            voltage: VDD / 2.0,
            tau,
            age: 0.0,
        }
    }

    /// Drive the node to the target level (configuration-phase write).
    /// Resets the node age.
    pub fn program(&mut self, level: PgLevel) {
        self.voltage = level.voltage();
        self.age = 0.0;
    }

    /// Current analog node voltage, volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Set the analog node voltage directly (half-select disturb coupling).
    /// Does not reset the node age: a disturb is not a refresh.
    pub(crate) fn set_voltage(&mut self, v: f64) {
        self.voltage = v;
    }

    /// Seconds since the last program/refresh.
    pub fn age(&self) -> f64 {
        self.age
    }

    /// Let the node leak for `dt` seconds: exponential relaxation towards
    /// `VDD/2`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "time must be non-negative");
        let mid = VDD / 2.0;
        self.voltage = mid + (self.voltage - mid) * (-dt / self.tau).exp();
        self.age += dt;
    }

    /// Quantize the stored voltage back to a [`PgLevel`].
    pub fn read_level(&self) -> PgLevel {
        PgLevel::from_voltage(self.voltage)
    }

    /// True if the stored level still decodes to `intended`.
    pub fn holds(&self, intended: PgLevel) -> bool {
        self.read_level() == intended
    }

    /// Re-assert the currently decoded level (refresh-in-place). A node that
    /// has already decayed into the `V0` band is refreshed *as off* — the
    /// fail-safe noted in the type docs — so refresh must run within
    /// [`ChargeNode::retention_deadline`] of programming.
    pub fn refresh(&mut self) {
        let level = self.read_level();
        self.program(level);
    }

    /// Time (seconds) after programming at which a `V+`/`V−` level decays
    /// into the `V0` guard band and is lost: `tau · ln(ΔV_prog / ΔV_guard)`.
    pub fn retention_deadline(&self) -> f64 {
        let swing = VDD / 2.0; // programmed offset from the midpoint
        let guard = VDD / 6.0; // quantizer guard band (see PgLevel)
        self.tau * (swing / guard).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_off() {
        let node = ChargeNode::new(1.0);
        assert_eq!(node.read_level(), PgLevel::VZero);
    }

    #[test]
    fn programming_sets_exact_voltage() {
        let mut node = ChargeNode::new(1.0);
        node.program(PgLevel::VMinus);
        assert_eq!(node.voltage(), 0.0);
        assert!(node.holds(PgLevel::VMinus));
    }

    #[test]
    fn leakage_relaxes_towards_midpoint() {
        let mut node = ChargeNode::new(1.0);
        node.program(PgLevel::VPlus);
        node.advance(0.5);
        assert!(node.voltage() < VDD);
        assert!(node.voltage() > VDD / 2.0);
        node.advance(100.0);
        assert!((node.voltage() - VDD / 2.0).abs() < 1e-9);
    }

    #[test]
    fn decayed_node_reads_off_not_opposite() {
        // Fail-safe: a leaked V− node must never read as V+ (or vice versa).
        let mut node = ChargeNode::new(1.0);
        node.program(PgLevel::VMinus);
        node.advance(50.0);
        assert_eq!(node.read_level(), PgLevel::VZero);
    }

    #[test]
    fn refresh_before_deadline_preserves_level() {
        let mut node = ChargeNode::new(1e-3);
        node.program(PgLevel::VPlus);
        let deadline = node.retention_deadline();
        assert!(deadline > 0.0);
        node.advance(deadline * 0.9);
        assert!(node.holds(PgLevel::VPlus));
        node.refresh();
        assert_eq!(node.voltage(), VDD);
        assert_eq!(node.age(), 0.0);
    }

    #[test]
    fn refresh_after_deadline_loses_level() {
        let mut node = ChargeNode::new(1e-3);
        node.program(PgLevel::VPlus);
        node.advance(node.retention_deadline() * 1.5);
        node.refresh();
        assert_eq!(node.read_level(), PgLevel::VZero);
    }

    #[test]
    fn deadline_matches_simulation() {
        let mut node = ChargeNode::new(2e-3);
        node.program(PgLevel::VPlus);
        let d = node.retention_deadline();
        let mut probe = node;
        probe.advance(d * 0.999);
        assert!(probe.holds(PgLevel::VPlus), "just before deadline");
        let mut probe2 = node;
        probe2.advance(d * 1.001);
        assert!(!probe2.holds(PgLevel::VPlus), "just after deadline");
    }

    #[test]
    fn age_accumulates() {
        let mut node = ChargeNode::new(1.0);
        node.program(PgLevel::VPlus);
        node.advance(0.25);
        node.advance(0.25);
        assert!((node.age() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "retention must be positive")]
    fn zero_tau_rejected() {
        let _ = ChargeNode::new(0.0);
    }

    #[test]
    #[should_panic(expected = "time must be non-negative")]
    fn negative_time_rejected() {
        ChargeNode::new(1.0).advance(-1.0);
    }
}
