//! Row/column configuration protocol of the GNOR-PLA array (Fig. 3).
//!
//! Every ambipolar CNFET in the array has its polarity gate attached to a
//! local storage node; a **global `VPG` line** carries the programming
//! voltage, and a device at position `(i, j)` is written by asserting the
//! row-select `VSelR,i` and the column-select `VSelC,j` simultaneously.
//! During the configuration phase each device is selected **individually**
//! and the charge corresponding to its wished PG voltage is stored.
//!
//! The model enforces the protocol invariants (exactly one row and one
//! column asserted per write pulse), tracks per-node charge through
//! [`ChargeNode`], and optionally models **half-select disturb**: cells that
//! share the selected row or column see a small fraction of the programming
//! pulse, the classic disturb mechanism of charge-programmed arrays.

use crate::charge::ChargeNode;
use crate::device::PgLevel;
use std::error::Error;
use std::fmt;

/// One select line of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectLine {
    /// `VSelR,i` — row select.
    Row(usize),
    /// `VSelC,j` — column select.
    Col(usize),
}

/// Error applying a programming pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// No row or no column is asserted: the pulse addresses nothing.
    NoSelection,
    /// More than one row or column asserted: the pulse would write several
    /// devices at once, which the per-device protocol forbids.
    MultipleSelection,
    /// A select index is outside the array.
    OutOfBounds {
        /// The offending line.
        line: SelectLine,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::NoSelection => write!(f, "no row/column selected for pulse"),
            ProgramError::MultipleSelection => {
                write!(f, "more than one row or column selected for pulse")
            }
            ProgramError::OutOfBounds { line } => write!(f, "select line {line:?} out of bounds"),
        }
    }
}

impl Error for ProgramError {}

/// Charge-programmed polarity-gate array with row/column addressing.
///
/// # Example
///
/// ```
/// use cnfet::{PgLevel, ProgrammingMatrix, SelectLine};
///
/// let mut m = ProgrammingMatrix::new(2, 3, 1e-3);
/// m.select(SelectLine::Row(1))?;
/// m.select(SelectLine::Col(2))?;
/// m.apply_vpg(PgLevel::VMinus)?;
/// m.clear_selection();
/// assert_eq!(m.read(1, 2), PgLevel::VMinus);
/// assert_eq!(m.read(0, 0), PgLevel::VZero); // untouched cells stay off
/// # Ok::<(), cnfet::ProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgrammingMatrix {
    rows: usize,
    cols: usize,
    nodes: Vec<ChargeNode>,
    row_sel: Vec<bool>,
    col_sel: Vec<bool>,
    disturb_fraction: f64,
    pulses: u64,
}

impl ProgrammingMatrix {
    /// An array of `rows × cols` fresh storage nodes with retention time
    /// constant `tau` seconds and no half-select disturb.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `tau` is not positive.
    pub fn new(rows: usize, cols: usize, tau: f64) -> ProgrammingMatrix {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        ProgrammingMatrix {
            rows,
            cols,
            nodes: vec![ChargeNode::new(tau); rows * cols],
            row_sel: vec![false; rows],
            col_sel: vec![false; cols],
            disturb_fraction: 0.0,
            pulses: 0,
        }
    }

    /// Enable half-select disturb: on every pulse, cells sharing the
    /// selected row or column move `fraction` of the way towards the pulse
    /// voltage.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn with_disturb(mut self, fraction: f64) -> ProgrammingMatrix {
        assert!(
            (0.0..1.0).contains(&fraction),
            "disturb fraction must be in [0, 1)"
        );
        self.disturb_fraction = fraction;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total programming pulses applied so far.
    pub fn pulse_count(&self) -> u64 {
        self.pulses
    }

    /// Assert a select line.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::OutOfBounds`] for an index outside the array.
    pub fn select(&mut self, line: SelectLine) -> Result<(), ProgramError> {
        match line {
            SelectLine::Row(i) if i < self.rows => {
                self.row_sel[i] = true;
                Ok(())
            }
            SelectLine::Col(j) if j < self.cols => {
                self.col_sel[j] = true;
                Ok(())
            }
            _ => Err(ProgramError::OutOfBounds { line }),
        }
    }

    /// Deassert every select line.
    pub fn clear_selection(&mut self) {
        self.row_sel.fill(false);
        self.col_sel.fill(false);
    }

    /// Drive the global `VPG` line with a programming pulse at `level`.
    ///
    /// Writes the unique selected cell; applies half-select disturb to the
    /// rest of the selected row and column if configured.
    ///
    /// # Errors
    ///
    /// [`ProgramError::NoSelection`] if no row or no column is asserted;
    /// [`ProgramError::MultipleSelection`] if several rows or several
    /// columns are asserted.
    pub fn apply_vpg(&mut self, level: PgLevel) -> Result<(), ProgramError> {
        let rows: Vec<usize> = selected(&self.row_sel);
        let cols: Vec<usize> = selected(&self.col_sel);
        match (rows.len(), cols.len()) {
            (0, _) | (_, 0) => return Err(ProgramError::NoSelection),
            (1, 1) => {}
            _ => return Err(ProgramError::MultipleSelection),
        }
        let (i, j) = (rows[0], cols[0]);
        let target = level.voltage();
        if self.disturb_fraction > 0.0 {
            for jj in 0..self.cols {
                if jj != j {
                    self.disturb(i, jj, target);
                }
            }
            for ii in 0..self.rows {
                if ii != i {
                    self.disturb(ii, j, target);
                }
            }
        }
        self.node_mut(i, j).program(level);
        self.pulses += 1;
        Ok(())
    }

    fn disturb(&mut self, i: usize, j: usize, target: f64) {
        let f = self.disturb_fraction;
        let node = self.node_mut(i, j);
        let v = node.voltage() + f * (target - node.voltage());
        node.set_voltage(v);
    }

    /// Program an entire polarity map cell by cell (the configuration phase
    /// of Fig. 3): for each cell, select its row and column, pulse `VPG`,
    /// deselect.
    ///
    /// # Panics
    ///
    /// Panics if `map` dimensions do not match the array.
    pub fn program_map(&mut self, map: &[Vec<PgLevel>]) {
        assert_eq!(map.len(), self.rows, "map row count mismatch");
        for (i, row) in map.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "map column count mismatch");
            for (j, &level) in row.iter().enumerate() {
                self.clear_selection();
                self.select(SelectLine::Row(i)).expect("row in range");
                self.select(SelectLine::Col(j)).expect("col in range");
                self.apply_vpg(level).expect("single selection");
            }
        }
        self.clear_selection();
    }

    /// Decode the stored level of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn read(&self, i: usize, j: usize) -> PgLevel {
        self.node(i, j).read_level()
    }

    /// Decode the whole array.
    pub fn read_map(&self) -> Vec<Vec<PgLevel>> {
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.read(i, j)).collect())
            .collect()
    }

    /// True if every cell decodes to `map`.
    pub fn verify(&self, map: &[Vec<PgLevel>]) -> bool {
        map.len() == self.rows
            && map.iter().enumerate().all(|(i, row)| {
                row.len() == self.cols && row.iter().enumerate().all(|(j, &l)| self.read(i, j) == l)
            })
    }

    /// Let every node leak for `dt` seconds.
    pub fn advance(&mut self, dt: f64) {
        for node in &mut self.nodes {
            node.advance(dt);
        }
    }

    /// Refresh every node in place (see [`ChargeNode::refresh`] for the
    /// fail-safe caveat).
    pub fn refresh_all(&mut self) {
        for node in &mut self.nodes {
            node.refresh();
        }
    }

    /// Total configuration time for a full-array program at `t_pulse`
    /// seconds per cell — the serial cost of individual addressing.
    pub fn configuration_time(&self, t_pulse: f64) -> f64 {
        t_pulse * (self.rows * self.cols) as f64
    }

    /// Direct access to a node (for leakage experiments).
    pub fn node(&self, i: usize, j: usize) -> &ChargeNode {
        assert!(i < self.rows && j < self.cols, "cell index out of bounds");
        &self.nodes[i * self.cols + j]
    }

    fn node_mut(&mut self, i: usize, j: usize) -> &mut ChargeNode {
        assert!(i < self.rows && j < self.cols, "cell index out of bounds");
        &mut self.nodes[i * self.cols + j]
    }
}

fn selected(sel: &[bool]) -> Vec<usize> {
    sel.iter()
        .enumerate()
        .filter_map(|(k, &s)| s.then_some(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_array_is_all_off() {
        let m = ProgrammingMatrix::new(3, 4, 1.0);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(m.read(i, j), PgLevel::VZero);
            }
        }
    }

    #[test]
    fn single_cell_write() {
        let mut m = ProgrammingMatrix::new(2, 2, 1.0);
        m.select(SelectLine::Row(0)).unwrap();
        m.select(SelectLine::Col(1)).unwrap();
        m.apply_vpg(PgLevel::VPlus).unwrap();
        assert_eq!(m.read(0, 1), PgLevel::VPlus);
        assert_eq!(m.read(0, 0), PgLevel::VZero);
        assert_eq!(m.read(1, 1), PgLevel::VZero);
        assert_eq!(m.pulse_count(), 1);
    }

    #[test]
    fn pulse_without_selection_fails() {
        let mut m = ProgrammingMatrix::new(2, 2, 1.0);
        assert_eq!(m.apply_vpg(PgLevel::VPlus), Err(ProgramError::NoSelection));
        m.select(SelectLine::Row(0)).unwrap();
        assert_eq!(m.apply_vpg(PgLevel::VPlus), Err(ProgramError::NoSelection));
    }

    #[test]
    fn multi_selection_rejected() {
        let mut m = ProgrammingMatrix::new(2, 2, 1.0);
        m.select(SelectLine::Row(0)).unwrap();
        m.select(SelectLine::Row(1)).unwrap();
        m.select(SelectLine::Col(0)).unwrap();
        assert_eq!(
            m.apply_vpg(PgLevel::VPlus),
            Err(ProgramError::MultipleSelection)
        );
    }

    #[test]
    fn out_of_bounds_select_rejected() {
        let mut m = ProgrammingMatrix::new(2, 2, 1.0);
        assert!(matches!(
            m.select(SelectLine::Row(5)),
            Err(ProgramError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn program_map_roundtrip() {
        let map = vec![
            vec![PgLevel::VPlus, PgLevel::VZero, PgLevel::VMinus],
            vec![PgLevel::VMinus, PgLevel::VPlus, PgLevel::VZero],
        ];
        let mut m = ProgrammingMatrix::new(2, 3, 1.0);
        m.program_map(&map);
        assert!(m.verify(&map));
        assert_eq!(m.read_map(), map);
        assert_eq!(m.pulse_count(), 6);
    }

    #[test]
    fn leakage_degrades_then_refresh_recovers() {
        let map = vec![vec![PgLevel::VPlus, PgLevel::VMinus]];
        let mut m = ProgrammingMatrix::new(1, 2, 1e-3);
        m.program_map(&map);
        m.advance(0.5e-3);
        assert!(m.verify(&map), "within retention deadline");
        m.refresh_all();
        m.advance(0.5e-3);
        assert!(m.verify(&map), "refresh extends retention");
        m.advance(1.0); // far past the deadline
        assert!(!m.verify(&map));
        // All cells fail safe to off.
        for row in m.read_map() {
            for l in row {
                assert_eq!(l, PgLevel::VZero);
            }
        }
    }

    #[test]
    fn mild_disturb_is_harmless() {
        let map = vec![
            vec![PgLevel::VPlus, PgLevel::VMinus],
            vec![PgLevel::VMinus, PgLevel::VPlus],
        ];
        let mut m = ProgrammingMatrix::new(2, 2, 1.0).with_disturb(0.05);
        m.program_map(&map);
        assert!(m.verify(&map), "5% disturb must not flip bands");
    }

    #[test]
    fn configuration_time_is_serial() {
        let m = ProgrammingMatrix::new(10, 20, 1.0);
        assert!((m.configuration_time(1e-6) - 200e-6).abs() < 1e-18);
    }

    #[test]
    fn overwrite_changes_cell() {
        let mut m = ProgrammingMatrix::new(1, 1, 1.0);
        m.program_map(&[vec![PgLevel::VPlus]]);
        m.program_map(&[vec![PgLevel::VMinus]]);
        assert_eq!(m.read(0, 0), PgLevel::VMinus);
    }
}
