//! Finite-state machines on GNOR PLAs.
//!
//! The canonical use of a PLA in a larger system is the **FSM kernel**:
//! next-state and output logic in the array, a state register closing the
//! loop. The GNOR PLA implements the combinational core with one column
//! per primary input *and* per state bit (a classical PLA needs both rails
//! of every state bit too, so the saving compounds with the state width).
//!
//! [`PlaFsm`] binds a [`GnorPla`] to a state register: the PLA's inputs
//! are `[primary inputs ++ state bits]` and its outputs are
//! `[primary outputs ++ next-state bits]`. The type checks the arity
//! arithmetic, steps cycle by cycle, and can run input traces.

use crate::area::PlaDimensions;
use crate::pla::GnorPla;
use crate::sim::Simulator;
use logic::Cover;
use std::error::Error;
use std::fmt;

/// Error assembling an FSM around a PLA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmError {
    /// The PLA has fewer inputs than state bits.
    TooFewInputs,
    /// The PLA has fewer outputs than state bits.
    TooFewOutputs,
    /// Zero state bits requested.
    NoState,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::TooFewInputs => write!(f, "PLA has fewer inputs than state bits"),
            FsmError::TooFewOutputs => write!(f, "PLA has fewer outputs than state bits"),
            FsmError::NoState => write!(f, "an FSM needs at least one state bit"),
        }
    }
}

impl Error for FsmError {}

/// A Moore/Mealy FSM: GNOR PLA plus a state register.
///
/// Input convention: PLA inputs are `[x_0 … x_{i-1}, s_0 … s_{k-1}]`;
/// PLA outputs are `[y_0 … y_{o-1}, s'_0 … s'_{k-1}]`.
///
/// # Example
///
/// A 2-bit counter with enable:
///
/// ```
/// use ambipla_core::fsm::{counter_cover, PlaFsm};
///
/// // Input: en. State: s0, s1. Output: carry on wrap.
/// let kernel = counter_cover(2);
/// let mut fsm = PlaFsm::new(&kernel, 1, 2).expect("arities match");
/// fsm.run(&[1, 1, 1]); // count to 3
/// assert_eq!(fsm.state(), 3);
/// assert_eq!(fsm.step(1), 1); // wrap fires the carry
/// assert_eq!(fsm.state(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaFsm {
    pla: GnorPla,
    n_inputs: usize,
    n_outputs: usize,
    state_bits: usize,
    state: u64,
}

impl PlaFsm {
    /// Wrap the combinational cover in an FSM with `state_bits` feedback
    /// bits. The cover must have `n_inputs + state_bits` inputs and
    /// `n_outputs + state_bits` outputs (state bits last on both sides).
    ///
    /// # Errors
    ///
    /// See [`FsmError`].
    ///
    /// # Panics
    ///
    /// Panics if the cover is empty (see [`GnorPla::from_cover`]).
    pub fn new(cover: &Cover, n_inputs: usize, state_bits: usize) -> Result<PlaFsm, FsmError> {
        if state_bits == 0 {
            return Err(FsmError::NoState);
        }
        if cover.n_inputs() < state_bits + n_inputs || cover.n_inputs() != n_inputs + state_bits {
            return Err(FsmError::TooFewInputs);
        }
        if cover.n_outputs() < state_bits {
            return Err(FsmError::TooFewOutputs);
        }
        Ok(PlaFsm {
            pla: GnorPla::from_cover(cover),
            n_inputs,
            n_outputs: cover.n_outputs() - state_bits,
            state_bits,
            state: 0,
        })
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of primary outputs.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of state bits.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// The current state (packed).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Force the state register (reset/preset).
    ///
    /// # Panics
    ///
    /// Panics if `state` has bits beyond `state_bits`.
    pub fn set_state(&mut self, state: u64) {
        assert!(
            state < (1 << self.state_bits),
            "state wider than the register"
        );
        self.state = state;
    }

    /// The underlying PLA.
    pub fn pla(&self) -> &GnorPla {
        &self.pla
    }

    /// Combinational dimensions of the kernel (for the area model).
    pub fn dimensions(&self) -> PlaDimensions {
        self.pla.dimensions()
    }

    /// One clock edge: returns the primary outputs for the applied inputs,
    /// then latches the next state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has bits beyond `n_inputs`.
    pub fn step(&mut self, inputs: u64) -> u64 {
        assert!(
            self.n_inputs == 64 || inputs < (1 << self.n_inputs),
            "inputs wider than declared"
        );
        let packed = inputs | self.state << self.n_inputs;
        let out = self.pla.simulate_bits(packed);
        let mut primary = 0u64;
        for (j, &bit) in out.iter().take(self.n_outputs).enumerate() {
            if bit {
                primary |= 1 << j;
            }
        }
        let mut next = 0u64;
        for k in 0..self.state_bits {
            if out[self.n_outputs + k] {
                next |= 1 << k;
            }
        }
        self.state = next;
        primary
    }

    /// Run a trace of inputs from the current state; returns the output
    /// sequence.
    pub fn run(&mut self, trace: &[u64]) -> Vec<u64> {
        trace.iter().map(|&x| self.step(x)).collect()
    }
}

/// Build the combinational cover of a binary up-counter with enable:
/// inputs `[en, state]`, outputs `[carry, next state]`. A convenient
/// non-trivial FSM kernel for examples and tests.
pub fn counter_cover(state_bits: usize) -> Cover {
    assert!((1..=8).contains(&state_bits), "1..=8 state bits");
    let n = 1 + state_bits; // en + state
    let o = 1 + state_bits; // carry + next state
    let mut cover = Cover::new(n, o);
    for en in 0..2u64 {
        for s in 0..(1u64 << state_bits) {
            let next = if en == 1 {
                (s + 1) & ((1 << state_bits) - 1)
            } else {
                s
            };
            let carry = en == 1 && s == (1 << state_bits) - 1;
            let mut outs = vec![false; o];
            outs[0] = carry;
            for k in 0..state_bits {
                outs[1 + k] = next >> k & 1 == 1;
            }
            if outs.iter().any(|&b| b) {
                let bits = en | s << 1;
                let mut cube = logic::Cube::minterm(bits, n, o);
                for (j, &keep) in outs.iter().enumerate() {
                    if !keep {
                        cube.clear_output(j);
                    }
                }
                cover.push(cube);
            }
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::espresso;

    #[test]
    fn two_bit_counter_counts() {
        let cover = counter_cover(2);
        let (min, _) = espresso(&cover);
        let mut fsm = PlaFsm::new(&min, 1, 2).expect("valid FSM");
        assert_eq!(fsm.state(), 0);
        // Three enabled steps: 0 → 1 → 2 → 3.
        fsm.run(&[1, 1, 1]);
        assert_eq!(fsm.state(), 3);
        // Wrap with carry.
        let out = fsm.step(1);
        assert_eq!(out, 1, "carry fires on wrap");
        assert_eq!(fsm.state(), 0);
    }

    #[test]
    fn disabled_counter_holds() {
        let cover = counter_cover(3);
        let mut fsm = PlaFsm::new(&cover, 1, 3).expect("valid FSM");
        fsm.run(&[1, 1]);
        let s = fsm.state();
        fsm.run(&[0, 0, 0]);
        assert_eq!(fsm.state(), s, "disable must hold state");
    }

    #[test]
    fn reset_via_set_state() {
        let cover = counter_cover(2);
        let mut fsm = PlaFsm::new(&cover, 1, 2).unwrap();
        fsm.run(&[1, 1, 1]);
        fsm.set_state(0);
        assert_eq!(fsm.state(), 0);
    }

    #[test]
    fn minimization_does_not_change_behaviour() {
        let cover = counter_cover(3);
        let (min, stats) = espresso(&cover);
        assert!(stats.final_cubes <= stats.initial_cubes);
        let mut a = PlaFsm::new(&cover, 1, 3).unwrap();
        let mut b = PlaFsm::new(&min, 1, 3).unwrap();
        let trace: Vec<u64> = (0..40).map(|i| u64::from(i % 3 != 0)).collect();
        assert_eq!(a.run(&trace), b.run(&trace));
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn arity_errors() {
        let cover = counter_cover(2); // 3 in, 3 out
        assert_eq!(PlaFsm::new(&cover, 1, 0).unwrap_err(), FsmError::NoState);
        assert_eq!(
            PlaFsm::new(&cover, 2, 2).unwrap_err(),
            FsmError::TooFewInputs
        );
        // 4 inputs, 1 output: input arithmetic works for 4 state bits but
        // there are not enough outputs to feed the register back.
        let narrow = Cover::parse("10-- 1", 4, 1).unwrap();
        assert_eq!(
            PlaFsm::new(&narrow, 0, 4).unwrap_err(),
            FsmError::TooFewOutputs
        );
    }

    #[test]
    fn counter_kernel_dimensions_feed_area_model() {
        let cover = counter_cover(4);
        let (min, _) = espresso(&cover);
        let fsm = PlaFsm::new(&min, 1, 4).unwrap();
        let dims = fsm.dimensions();
        assert_eq!(dims.inputs, 5);
        assert_eq!(dims.outputs, 5);
        // The classical FSM kernel pays two columns per state bit as well.
        assert_eq!(dims.column_count_classical() - dims.column_count_cnfet(), 5);
    }

    #[test]
    #[should_panic(expected = "wider than declared")]
    fn wide_input_rejected() {
        let cover = counter_cover(2);
        let mut fsm = PlaFsm::new(&cover, 1, 2).unwrap();
        let _ = fsm.step(0b10);
    }
}
