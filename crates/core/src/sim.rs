//! The [`Simulator`] trait: one object-safe evaluation API for every
//! functional simulator in the workspace.
//!
//! Before this module existed, each PLA flavor carried its own hand-rolled
//! `simulate_bits(&self, u64) -> Vec<bool>` plus a per-type batch trait
//! implementation, and every consumer (verification sweeps, the
//! `ambipla_serve` batcher, benches) was written against one concrete
//! type. [`Simulator`] collapses all of that into a single trait:
//!
//! * the **required** method is word-level: [`Simulator::eval_block`]
//!   evaluates 64 input vectors per call,
//! * the **scalar** entry points ([`Simulator::simulate_bits`],
//!   [`Simulator::simulate`], [`Simulator::eval_vectors`]) are provided
//!   adapters over `eval_block`, so implementors write the fast path once
//!   and get the convenience API for free,
//! * the trait is **object-safe**: heterogeneous backends (a plain
//!   [`Cover`], a `GnorPla`, a faulty array, an FPGA mapping) ride the
//!   same `&dyn Simulator` sweeps and the same `Arc<dyn Simulator>`
//!   service registrations.
//!
//! # Lane layout
//!
//! A **block** packs 64 input vectors ("lanes") column-major: argument
//! `inputs[i]` of [`eval_block`](Simulator::eval_block) carries input `i`
//! of all 64 lanes — bit `L` of that word is input `i` of lane `L`. The
//! returned words carry the outputs in the same layout: bit `L` of output
//! word `j` is output `j` of lane `L`. [`pack_vectors`] / [`unpack_lane`]
//! convert between this layout and the packed-assignment (`u64` per
//! vector, bit `i` = input `i`) layout the scalar API uses.
//!
//! # Partial blocks: the `lane_mask` garbage-lane contract
//!
//! `eval_block` always computes all 64 lanes. When fewer than 64 vectors
//! are packed, the unused lanes of the input words hold whatever the
//! packer left there (zeros after [`pack_vectors`], arbitrary garbage
//! otherwise) and the corresponding output lanes are the evaluation of
//! that garbage — **not** zeros, and not an error. Any consumer of a
//! partial block must mask output (or difference) words with
//! [`lane_mask`]`(valid_lanes)` before interpreting them, and must only
//! [`unpack_lane`] lanes it actually packed. Every sweep in this module,
//! the `ambipla_serve` batcher and the bulk sweeps follow this contract;
//! see [`logic::eval::lane_mask`] for the canonical statement.

use logic::eval::EXHAUSTIVE_LIMIT;
use logic::Cover;

pub use logic::eval::{exhaustive_block, lane_mask, pack_vectors, unpack_lane, LANES};
pub use logic::Equivalence;

/// Object-safe bit-parallel functional simulation: 64 lanes per call,
/// scalar adapters provided.
///
/// Implementors supply the arity ([`n_inputs`](Simulator::n_inputs) /
/// [`n_outputs`](Simulator::n_outputs)) and the word-level
/// [`eval_block`](Simulator::eval_block); everything else is derived.
/// See the [module docs](self) for the lane layout and the partial-block
/// (`lane_mask`) contract.
///
/// # Example
///
/// ```
/// use ambipla_core::{GnorPla, Simulator};
/// use logic::Cover;
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let pla = GnorPla::from_cover(&xor);
/// // The same trait serves the cover and the array it was mapped to.
/// let sims: [&dyn Simulator; 2] = [&xor, &pla];
/// for sim in sims {
///     assert_eq!(sim.simulate_bits(0b01), vec![true]);
///     assert_eq!(sim.simulate_bits(0b11), vec![false]);
/// }
/// ```
pub trait Simulator {
    /// Number of primary inputs: the word count expected by
    /// [`eval_block`](Simulator::eval_block).
    fn n_inputs(&self) -> usize;

    /// Number of primary outputs: the word count returned by
    /// [`eval_block`](Simulator::eval_block).
    fn n_outputs(&self) -> usize;

    /// Evaluate 64 input vectors at once.
    ///
    /// `inputs[i]` carries input `i` of every lane (bit `L` = lane `L`);
    /// the returned words carry the outputs in the same lane order. All
    /// 64 lanes are always computed — for partial blocks the unused
    /// output lanes are garbage the caller must mask (see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.n_inputs()`.
    fn eval_block(&self, inputs: &[u64]) -> Vec<u64>;

    /// Evaluate one packed assignment (bit `i` of `bits` is input `i`),
    /// returning one `bool` per output.
    ///
    /// Provided: packs `bits` into lane 0 of a block, evaluates, and
    /// extracts lane 0.
    fn simulate_bits(&self, bits: u64) -> Vec<bool> {
        let inputs: Vec<u64> = (0..self.n_inputs()).map(|i| bits >> i & 1).collect();
        unpack_lane(&self.eval_block(&inputs), 0)
    }

    /// Evaluate one explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.n_inputs()`.
    fn simulate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.n_inputs(), "input arity mismatch");
        let words: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        unpack_lane(&self.eval_block(&words), 0)
    }

    /// Evaluate up to 64 packed assignments, returning one output vector
    /// per assignment. Only the supplied lanes are unpacked, which is
    /// what makes partial blocks safe.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] vectors are supplied.
    fn eval_vectors(&self, vectors: &[u64]) -> Vec<Vec<bool>> {
        assert!(vectors.len() <= LANES, "at most {LANES} lanes per block");
        let words = self.eval_block(&pack_vectors(vectors, self.n_inputs()));
        (0..vectors.len())
            .map(|lane| unpack_lane(&words, lane))
            .collect()
    }
}

/// A [`Cover`] simulates itself: the SOP evaluation `Cover::eval_batch`
/// is the block path. This is what lets specification covers, synthesized
/// arrays and fault models ride the same `&dyn Simulator` machinery.
impl Simulator for Cover {
    fn n_inputs(&self) -> usize {
        Cover::n_inputs(self)
    }

    fn n_outputs(&self) -> usize {
        Cover::n_outputs(self)
    }

    fn eval_block(&self, inputs: &[u64]) -> Vec<u64> {
        self.eval_batch(inputs)
    }
}

/// Exhaustively compare two simulators over the low `n_checked` inputs
/// (any higher input columns are held at 0), 64 assignments per step,
/// reporting the first counterexample in (assignment, output) order.
///
/// # Panics
///
/// Panics if the arities of `a` and `b` differ, if `n_checked` exceeds
/// either simulator's input count, or if `n_checked >= 64`.
pub fn check_equivalent(a: &dyn Simulator, b: &dyn Simulator, n_checked: usize) -> Equivalence {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    assert!(
        n_checked <= a.n_inputs(),
        "cannot check more inputs than the simulators have"
    );
    assert!(n_checked < 64, "exhaustive sweeps need n_checked < 64");
    let n = a.n_inputs();
    let total = 1u64 << n_checked;
    let lanes_per_block = total.min(LANES as u64) as usize;
    for base in (0..total).step_by(LANES) {
        let inputs = exhaustive_block(base, n);
        let diffs: Vec<u64> = a
            .eval_block(&inputs)
            .iter()
            .zip(&b.eval_block(&inputs))
            .map(|(&x, &y)| x ^ y)
            .collect();
        if let Some((lane, output)) = first_set_lane(&diffs, lane_mask(lanes_per_block)) {
            return Equivalence::Counterexample {
                bits: base + lane as u64,
                output,
            };
        }
    }
    Equivalence::Equivalent { exhaustive: true }
}

/// Exhaustively compare `sim` against `cover` over the low `n_checked`
/// inputs, 64 assignments per step. Equivalent to — and replacing — the
/// scalar loop
/// `(0..1 << n_checked).all(|bits| sim.simulate_bits(bits) == cover.eval_bits(bits))`,
/// including its arity tolerance: excess simulator inputs are held at 0
/// on the cover side, mismatched output arity is never equivalent.
///
/// # Panics
///
/// Panics if `n_checked` exceeds the simulator's input count or 63.
pub fn equivalent_to_cover(sim: &dyn Simulator, cover: &Cover, n_checked: usize) -> bool {
    let n = sim.n_inputs();
    assert!(
        n_checked <= n,
        "cannot check more inputs than the array has"
    );
    assert!(n_checked < 64, "exhaustive sweeps need n_checked < 64");
    if sim.n_outputs() != cover.n_outputs() {
        // Mismatched output arity can never be equivalent (mirrors the
        // scalar Vec comparison this sweep replaced).
        return false;
    }
    let total = 1u64 << n_checked;
    let lanes_per_block = total.min(LANES as u64) as usize;
    (0..total).step_by(LANES).all(|base| {
        let inputs = exhaustive_block(base, n);
        words_agree(
            &sim.eval_block(&inputs),
            &eval_cover_resized(cover, &inputs),
            lane_mask(lanes_per_block),
        )
    })
}

/// Compare `sim` against `cover` on an explicit list of packed
/// assignments, 64 per step. Used by the sampled (wide-function) paths.
pub fn agrees_on(sim: &dyn Simulator, cover: &Cover, patterns: &[u64]) -> bool {
    if sim.n_outputs() != cover.n_outputs() {
        return false;
    }
    patterns.chunks(LANES).all(|chunk| {
        let inputs = pack_vectors(chunk, sim.n_inputs());
        words_agree(
            &sim.eval_block(&inputs),
            &eval_cover_resized(cover, &inputs),
            lane_mask(chunk.len()),
        )
    })
}

/// True if `sim` realizes `cover`: exhaustive up to
/// [`logic::eval::EXHAUSTIVE_LIMIT`] inputs, the canonical deterministic
/// sample ([`logic::eval::sample_assignments`]) beyond. The shared body
/// behind every per-type `implements` method.
pub fn implements_cover(sim: &dyn Simulator, cover: &Cover) -> bool {
    let n = cover.n_inputs().min(sim.n_inputs());
    if n <= EXHAUSTIVE_LIMIT {
        equivalent_to_cover(sim, cover, n)
    } else {
        agrees_on(sim, cover, &logic::eval::sample_assignments(n))
    }
}

/// Evaluate `cover` on lane words produced for a (possibly different-arity)
/// simulator: excess simulator columns are dropped, missing ones read as 0
/// — matching what `Cover::eval_bits` did with out-of-range bits held low.
fn eval_cover_resized(cover: &Cover, inputs: &[u64]) -> Vec<u64> {
    if cover.n_inputs() == inputs.len() {
        cover.eval_batch(inputs)
    } else {
        let mut resized = inputs[..inputs.len().min(cover.n_inputs())].to_vec();
        resized.resize(cover.n_inputs(), 0);
        cover.eval_batch(&resized)
    }
}

fn words_agree(a: &[u64], b: &[u64], mask: u64) -> bool {
    assert_eq!(a.len(), b.len(), "output arity mismatch");
    a.iter().zip(b).all(|(&x, &y)| (x ^ y) & mask == 0)
}

/// Earliest `(lane, output)` where per-output difference words are set
/// under `mask`, in (lane, then output) order — the bit-parallel
/// counterpart of the scalar "first differing assignment, first differing
/// output" contract.
fn first_set_lane(diffs: &[u64], mask: u64) -> Option<(usize, usize)> {
    let lane = diffs
        .iter()
        .filter(|&&d| d & mask != 0)
        .map(|&d| (d & mask).trailing_zeros() as usize)
        .min()?;
    let output = diffs.iter().position(|&d| (d & mask) >> lane & 1 == 1)?;
    Some((lane, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pla::GnorPla;

    fn adder() -> (Cover, GnorPla) {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        (f, pla)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let vectors: Vec<u64> = (0..64).map(|v| v * 0x9e37 % 1024).collect();
        let words = pack_vectors(&vectors, 10);
        for (lane, &v) in vectors.iter().enumerate() {
            let bools = unpack_lane(&words, lane);
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(b, v >> i & 1 == 1, "lane {lane} input {i}");
            }
        }
    }

    #[test]
    fn exhaustive_block_enumerates_consecutive_assignments() {
        for base in [0u64, 64, 192] {
            let words = exhaustive_block(base, 9);
            for lane in 0..64 {
                let assignment = base + lane as u64;
                for (i, &w) in words.iter().enumerate() {
                    assert_eq!(
                        w >> lane & 1,
                        assignment >> i & 1,
                        "base {base} lane {lane} input {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_is_a_simulator() {
        let (f, _) = adder();
        let sim: &dyn Simulator = &f;
        for bits in 0..8u64 {
            assert_eq!(
                sim.simulate_bits(bits),
                f.eval_bits(bits),
                "bits {bits:03b}"
            );
        }
        assert_eq!(sim.n_inputs(), 3);
        assert_eq!(sim.n_outputs(), 2);
    }

    #[test]
    fn provided_scalar_adapters_agree() {
        let (_, pla) = adder();
        for bits in 0..8u64 {
            let explicit: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(pla.simulate(&explicit), pla.simulate_bits(bits));
        }
    }

    #[test]
    fn eval_vectors_matches_scalar() {
        let (_, pla) = adder();
        let vectors: Vec<u64> = (0..8).collect();
        let block = pla.eval_vectors(&vectors);
        for (lane, &bits) in vectors.iter().enumerate() {
            assert_eq!(block[lane], pla.simulate_bits(bits), "bits {bits:03b}");
        }
    }

    #[test]
    fn equivalent_to_cover_agrees_with_scalar_loop() {
        let (f, pla) = adder();
        assert!(equivalent_to_cover(&pla, &f, 3));
        // Break one driver polarity: the sweep must notice.
        let broken = GnorPla::from_parts(
            pla.input_plane().clone(),
            pla.output_plane().clone(),
            vec![true, false],
        );
        assert!(!equivalent_to_cover(&broken, &f, 3));
    }

    #[test]
    fn check_equivalent_reports_the_first_counterexample() {
        let (f, pla) = adder();
        assert!(check_equivalent(&pla, &f, 3).is_equivalent());
        let broken = GnorPla::from_parts(
            pla.input_plane().clone(),
            pla.output_plane().clone(),
            vec![true, false],
        );
        match check_equivalent(&broken, &f, 3) {
            Equivalence::Counterexample { bits, output } => {
                assert_eq!(output, 1, "the flipped driver is output 1");
                assert_ne!(
                    broken.simulate_bits(bits)[output],
                    f.eval_bits(bits)[output]
                );
            }
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn sub_word_spaces_mask_unused_lanes() {
        // 2 inputs: only 4 of the 64 lanes are meaningful.
        let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        assert!(equivalent_to_cover(&pla, &f, 2));
    }

    #[test]
    fn mismatched_output_arity_is_never_equivalent() {
        // The scalar Vec comparison this sweep replaced returned false for
        // a cover with a different output count; the batch sweep must too
        // (in release builds as well, not via a debug assertion).
        let (_, pla) = adder(); // 3 inputs, 2 outputs
        let narrow = Cover::parse("110 1\n011 1", 3, 1).expect("valid cover");
        assert!(!equivalent_to_cover(&pla, &narrow, 3));
        assert!(!agrees_on(&pla, &narrow, &[0, 1, 2]));
    }

    #[test]
    fn agrees_on_partial_chunks() {
        let (f, pla) = adder();
        let pats: Vec<u64> = (0..100).map(|x| x % 8).collect(); // 64 + 36 tail
        assert!(agrees_on(&pla, &f, &pats));
    }

    #[test]
    fn implements_cover_samples_beyond_the_exhaustive_limit() {
        // 22 inputs: implements_cover must take the sampled path and still
        // accept the identity pairing.
        let wide = Cover::parse("1111111111111111111111 1\n0000000000000000000000 1", 22, 1)
            .expect("valid cover");
        assert!(implements_cover(&wide, &wide));
    }
}
