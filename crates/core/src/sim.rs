//! The [`Simulator`] trait: one object-safe evaluation API for every
//! functional simulator in the workspace.
//!
//! Before this module existed, each PLA flavor carried its own hand-rolled
//! `simulate_bits(&self, u64) -> Vec<bool>` plus a per-type batch trait
//! implementation, and every consumer (verification sweeps, the
//! `ambipla_serve` batcher, benches) was written against one concrete
//! type. [`Simulator`] collapses all of that into a single trait:
//!
//! * the **required** method is width-generic and allocation-free:
//!   [`Simulator::eval_words`] evaluates up to `words × 64` input vectors
//!   per call into a caller-allocated buffer,
//! * the classic 64-lane [`Simulator::eval_block`] survives as a
//!   **provided adapter** (`words = 1`, allocating its result), as do the
//!   scalar entry points ([`Simulator::simulate_bits`],
//!   [`Simulator::simulate`], [`Simulator::eval_vectors`]) — implementors
//!   write the wide fast path once and get the whole convenience API for
//!   free,
//! * the trait is **object-safe**: heterogeneous backends (a plain
//!   [`Cover`], a `GnorPla`, a faulty array, an FPGA mapping) ride the
//!   same `&dyn Simulator` sweeps and the same `Arc<dyn Simulator>`
//!   service registrations.
//!
//! # The multi-word block layout (signal-major, column-major lanes)
//!
//! A **block** packs up to `words × 64` input vectors ("lanes"). Each
//! signal (input or output) owns `words` consecutive `u64` lane words:
//!
//! * `inputs[i·words .. (i+1)·words]` carries input `i` of every lane,
//! * lane `L` of the block lives in bit `L % 64` of word `L / 64`,
//! * on return, `out[j·words .. (j+1)·words]` carries output `j` in the
//!   same lane order.
//!
//! Buffer sizing follows directly: `inputs.len() == n_inputs × words` and
//! `out.len() == n_outputs × words`. With `words == 1` this degenerates
//! to the classic column-major 64-lane block (one `u64` per signal), so
//! `eval_block` is exactly `eval_words` with `words = 1`.
//! [`pack_vectors_words`] / [`unpack_lane_words`] convert between this
//! layout and the packed-assignment (`u64` per vector, bit `i` = input
//! `i`) layout the scalar API uses; [`exhaustive_words`] enumerates
//! consecutive assignments directly in block form.
//!
//! # Partial blocks: the `lane_mask` garbage-lane contract
//!
//! `eval_words` always computes all `words × 64` lanes. When fewer
//! vectors are packed, the unused lanes of the input words hold whatever
//! the packer left there (zeros after [`pack_vectors_words`], arbitrary
//! garbage otherwise) and the corresponding output lanes are the
//! evaluation of that garbage — **not** zeros, and not an error. Any
//! consumer of a partial block must mask output (or difference) words
//! with [`lane_mask_words`]`(valid_lanes, word)` before interpreting
//! them, and must only unpack lanes it actually packed. Every sweep in
//! this module, the `ambipla_serve` batcher and the bulk sweeps follow
//! this contract; see [`logic::eval::lane_mask`] for the canonical
//! single-word statement. There is no alignment requirement beyond the
//! layout itself: `words` is any positive count, and a tail block simply
//! packs fewer than `words × 64` lanes.
//!
//! # Migrating an external `eval_block` implementor
//!
//! Pre-redesign, `eval_block` was the required method. If you maintain an
//! out-of-tree `Simulator`, rename your `eval_block` body into
//!
//! ```text
//! fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize)
//! ```
//!
//! indexing signal `i`'s lane words as `inputs[i*words + w]` and writing
//! output `j`'s as `out[j*words + w]` (a loop over `w in 0..words` around
//! your old per-word code is a correct first cut), and delete your
//! `eval_block` — the provided adapter reproduces it. Callers of
//! `eval_block` and the scalar adapters are unaffected.

use crate::table::TruthTable;
use logic::eval::{first_set_lane_words, sweep_words, EXHAUSTIVE_LIMIT, SWEEP_WORDS};
use logic::Cover;
use std::sync::{Arc, RwLock};

pub use logic::eval::{
    exhaustive_block, exhaustive_words, lane_mask, lane_mask_words, pack_vectors,
    pack_vectors_words, unpack_lane, unpack_lane_words, LANES,
};
pub use logic::Equivalence;

/// Object-safe bit-parallel functional simulation: up to `words × 64`
/// lanes per call into caller-allocated buffers, with the 64-lane block
/// path and the scalar adapters provided.
///
/// Implementors supply the arity ([`n_inputs`](Simulator::n_inputs) /
/// [`n_outputs`](Simulator::n_outputs)) and the width-generic
/// [`eval_words`](Simulator::eval_words); everything else is derived.
/// See the [module docs](self) for the signal-major lane layout and the
/// partial-block (`lane_mask`) contract.
///
/// # Example
///
/// ```
/// use ambipla_core::{GnorPla, Simulator};
/// use logic::Cover;
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let pla = GnorPla::from_cover(&xor);
/// // The same trait serves the cover and the array it was mapped to.
/// let sims: [&dyn Simulator; 2] = [&xor, &pla];
/// for sim in sims {
///     assert_eq!(sim.simulate_bits(0b01), vec![true]);
///     assert_eq!(sim.simulate_bits(0b11), vec![false]);
/// }
/// ```
pub trait Simulator {
    /// Number of primary inputs: `eval_words` expects
    /// `n_inputs × words` input lane words.
    fn n_inputs(&self) -> usize;

    /// Number of primary outputs: `eval_words` fills
    /// `n_outputs × words` output lane words.
    fn n_outputs(&self) -> usize;

    /// Evaluate up to `words × 64` input vectors at once into `out`.
    ///
    /// `inputs[i·words + w]` carries lanes `w·64 .. (w+1)·64` of input
    /// `i` (bit `L % 64` = lane `L`); on return `out[j·words + w]`
    /// carries output `j` in the same lane order. All lanes are always
    /// computed — for partial blocks the unused output lanes are garbage
    /// the caller must mask (see the [module docs](self)). Callers own
    /// (and should reuse) both buffers. Single-stage backends (the
    /// [`Cover`] kernel) do not allocate per call; multi-stage backends
    /// (plane cascades, mapped networks) allocate only their internal
    /// stage buffers, once per call, amortized over `words × 64` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`, `inputs.len() != n_inputs × words`, or
    /// `out.len() != n_outputs × words`.
    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize);

    /// Evaluate 64 input vectors at once, allocating the result — the
    /// classic single-word block path.
    ///
    /// Provided: [`eval_words`](Simulator::eval_words) with `words = 1`
    /// into a fresh buffer. Hot paths should call `eval_words` with a
    /// reused buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.n_inputs()`.
    fn eval_block(&self, inputs: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.n_outputs()];
        self.eval_words(inputs, &mut out, 1);
        out
    }

    /// Evaluate one packed assignment (bit `i` of `bits` is input `i`),
    /// returning one `bool` per output.
    ///
    /// Provided: packs `bits` into lane 0 of a block, evaluates, and
    /// extracts lane 0.
    fn simulate_bits(&self, bits: u64) -> Vec<bool> {
        let inputs: Vec<u64> = (0..self.n_inputs()).map(|i| bits >> i & 1).collect();
        unpack_lane(&self.eval_block(&inputs), 0)
    }

    /// Evaluate one explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.n_inputs()`.
    fn simulate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.n_inputs(), "input arity mismatch");
        let words: Vec<u64> = inputs.iter().map(|&b| b as u64).collect();
        unpack_lane(&self.eval_block(&words), 0)
    }

    /// Evaluate up to 64 packed assignments, returning one output vector
    /// per assignment. Only the supplied lanes are unpacked, which is
    /// what makes partial blocks safe.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] vectors are supplied.
    fn eval_vectors(&self, vectors: &[u64]) -> Vec<Vec<bool>> {
        assert!(vectors.len() <= LANES, "at most {LANES} lanes per block");
        let words = self.eval_block(&pack_vectors(vectors, self.n_inputs()));
        (0..vectors.len())
            .map(|lane| unpack_lane(&words, lane))
            .collect()
    }
}

/// A shareable simulation backend: the form every multi-threaded consumer
/// (the `ambipla_serve` registration table, the [`EpochOracle`]) passes
/// around. Any `Simulator` that is `Send + Sync` qualifies.
pub type SharedSimulator = Arc<dyn Simulator + Send + Sync>;

/// Epoch-tagged scalar oracle for hot-swap verification.
///
/// A service that hot-swaps backends serves every reply under *some*
/// epoch; to check such a reply, a verifier needs the backend that was
/// live at that epoch, not whatever is live now. `EpochOracle` keeps the
/// full backend history — epoch `e` is the backend installed by the
/// `e`-th swap (epoch 0 is the initial registration) — behind an `RwLock`
/// so checker threads can verify replies while a mutator thread keeps
/// appending new epochs.
///
/// The intended discipline (what makes the chaos harnesses sound): the
/// mutator [`push`](EpochOracle::push)es the new backend **before**
/// triggering the swap that makes it live, so by the time any reply
/// tagged with the new epoch can exist, the oracle already answers for
/// it.
///
/// # Example
///
/// ```
/// use ambipla_core::sim::EpochOracle;
/// use logic::Cover;
/// use std::sync::Arc;
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let and = Cover::parse("11 1", 2, 1).unwrap();
/// let oracle = EpochOracle::new(Arc::new(xor));
/// assert_eq!(oracle.push(Arc::new(and)), 1); // the epoch it will serve
/// assert!(oracle.matches(0, 0b01, &[true])); // xor era
/// assert!(oracle.matches(1, 0b01, &[false])); // and era
/// ```
pub struct EpochOracle {
    epochs: RwLock<Vec<SharedSimulator>>,
}

impl EpochOracle {
    /// An oracle whose epoch 0 is `initial` (the backend registered
    /// before any swap).
    pub fn new(initial: SharedSimulator) -> EpochOracle {
        EpochOracle {
            epochs: RwLock::new(vec![initial]),
        }
    }

    /// Record the backend the *next* swap will install, returning the
    /// epoch it will serve under. Call before triggering the swap.
    pub fn push(&self, sim: SharedSimulator) -> u64 {
        let mut epochs = self.epochs.write().unwrap();
        epochs.push(sim);
        (epochs.len() - 1) as u64
    }

    /// Number of recorded epochs (latest epoch + 1).
    pub fn len(&self) -> usize {
        self.epochs.read().unwrap().len()
    }

    /// Never true: epoch 0 exists from construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The backend serving `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` was never recorded — under the push-before-swap
    /// discipline that means the verifier saw a reply from an epoch the
    /// mutator never created, which is a test failure, not a race.
    pub fn backend(&self, epoch: u64) -> SharedSimulator {
        let epochs = self.epochs.read().unwrap();
        Arc::clone(
            epochs
                .get(epoch as usize)
                .unwrap_or_else(|| panic!("epoch {epoch} was never recorded")),
        )
    }

    /// The scalar truth of `epoch`'s backend on one packed assignment —
    /// what a reply served under that epoch must equal.
    pub fn expected(&self, epoch: u64, bits: u64) -> Vec<bool> {
        self.backend(epoch).simulate_bits(bits)
    }

    /// True if `outputs` is exactly `epoch`'s scalar truth on `bits`.
    pub fn matches(&self, epoch: u64, bits: u64, outputs: &[bool]) -> bool {
        self.expected(epoch, bits) == outputs
    }
}

/// A [`Cover`] simulates itself: the width-generic SOP kernel
/// `Cover::eval_words` is the block path. This is what lets specification
/// covers, synthesized arrays and fault models ride the same
/// `&dyn Simulator` machinery.
impl Simulator for Cover {
    fn n_inputs(&self) -> usize {
        Cover::n_inputs(self)
    }

    fn n_outputs(&self) -> usize {
        Cover::n_outputs(self)
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        Cover::eval_words(self, inputs, out, words);
    }
}

/// Largest full arity answered by the [`TruthTable`] compare fast path
/// in [`check_equivalent`]: at `n ≤ 16` both tables fit comfortably in
/// cache (≤ 8 KiB per output), so materialize-then-compare beats the
/// lockstep sweep and leaves two reusable tables behind conceptually.
pub const TABLE_COMPARE_INPUTS: usize = 16;

/// Exhaustively compare two simulators over the low `n_checked` inputs
/// (any higher input columns are held at 0), `SWEEP_WORDS × 64`
/// assignments per step with buffers reused across blocks, reporting the
/// first counterexample in (assignment, output) order.
///
/// When the check covers the simulators' **full** input space and
/// `n_checked ≤ `[`TABLE_COMPARE_INPUTS`], the sweep is replaced by a
/// table compare: both sides are materialized into canonical
/// [`TruthTable`]s (one chunked exhaustive sweep each) and diffed
/// word-at-a-time via [`TruthTable::first_difference`] — same result,
/// same counterexample order, and the XOR-plus-mask inner loop of the
/// lockstep path collapses into straight word compares.
///
/// # Panics
///
/// Panics if the arities of `a` and `b` differ, if `n_checked` exceeds
/// either simulator's input count, or if `n_checked >= 64`.
pub fn check_equivalent(a: &dyn Simulator, b: &dyn Simulator, n_checked: usize) -> Equivalence {
    assert_eq!(a.n_inputs(), b.n_inputs(), "input arity mismatch");
    assert_eq!(a.n_outputs(), b.n_outputs(), "output arity mismatch");
    assert!(
        n_checked <= a.n_inputs(),
        "cannot check more inputs than the simulators have"
    );
    assert!(n_checked < 64, "exhaustive sweeps need n_checked < 64");
    if n_checked == a.n_inputs() && n_checked <= TABLE_COMPARE_INPUTS {
        let ta = TruthTable::from_simulator(a);
        let tb = TruthTable::from_simulator(b);
        return match ta.first_difference(&tb) {
            Some((bits, output)) => Equivalence::Counterexample { bits, output },
            None => Equivalence::Equivalent { exhaustive: true },
        };
    }
    let n = a.n_inputs();
    let o = a.n_outputs();
    let total = 1u64 << n_checked;
    let words = sweep_words(n_checked);
    let step = (words * LANES) as u64;
    let mut inputs = vec![0u64; n * words];
    let mut va = vec![0u64; o * words];
    let mut vb = vec![0u64; o * words];
    let mut base = 0u64;
    while base < total {
        exhaustive_words(base, n, words, &mut inputs);
        a.eval_words(&inputs, &mut va, words);
        b.eval_words(&inputs, &mut vb, words);
        let valid = (total - base).min(step) as usize;
        let diff = |j: usize, w: usize| va[j * words + w] ^ vb[j * words + w];
        if let Some((lane, output)) = first_set_lane_words(diff, o, words, valid) {
            return Equivalence::Counterexample {
                bits: base + lane as u64,
                output,
            };
        }
        base += step;
    }
    Equivalence::Equivalent { exhaustive: true }
}

/// Exhaustively compare `sim` against `cover` over the low `n_checked`
/// inputs, `SWEEP_WORDS × 64` assignments per step with buffers reused
/// across blocks. Equivalent to — and replacing — the scalar loop
/// `(0..1 << n_checked).all(|bits| sim.simulate_bits(bits) == cover.eval_bits(bits))`,
/// including its arity tolerance: excess simulator inputs are held at 0
/// on the cover side, mismatched output arity is never equivalent.
///
/// # Panics
///
/// Panics if `n_checked` exceeds the simulator's input count or 63.
pub fn equivalent_to_cover(sim: &dyn Simulator, cover: &Cover, n_checked: usize) -> bool {
    let n = sim.n_inputs();
    assert!(
        n_checked <= n,
        "cannot check more inputs than the array has"
    );
    assert!(n_checked < 64, "exhaustive sweeps need n_checked < 64");
    if sim.n_outputs() != cover.n_outputs() {
        // Mismatched output arity can never be equivalent (mirrors the
        // scalar Vec comparison this sweep replaced).
        return false;
    }
    let o = sim.n_outputs();
    let total = 1u64 << n_checked;
    let words = sweep_words(n_checked);
    let step = (words * LANES) as u64;
    let mut inputs = vec![0u64; n * words];
    let mut vs = vec![0u64; o * words];
    let mut vc = vec![0u64; o * words];
    let mut resized = Vec::new();
    let mut base = 0u64;
    while base < total {
        exhaustive_words(base, n, words, &mut inputs);
        sim.eval_words(&inputs, &mut vs, words);
        eval_cover_words_resized(cover, &inputs, n, words, &mut resized, &mut vc);
        let valid = (total - base).min(step) as usize;
        if !words_agree(&vs, &vc, words, valid) {
            return false;
        }
        base += step;
    }
    true
}

/// Compare `sim` against `cover` on an explicit list of packed
/// assignments, `SWEEP_WORDS × 64` per step. Used by the sampled
/// (wide-function) paths.
pub fn agrees_on(sim: &dyn Simulator, cover: &Cover, patterns: &[u64]) -> bool {
    if sim.n_outputs() != cover.n_outputs() {
        return false;
    }
    let n = sim.n_inputs();
    let o = sim.n_outputs();
    let mut inputs = vec![0u64; n * SWEEP_WORDS];
    let mut vs = vec![0u64; o * SWEEP_WORDS];
    let mut vc = vec![0u64; o * SWEEP_WORDS];
    let mut resized = Vec::new();
    patterns.chunks(SWEEP_WORDS * LANES).all(|chunk| {
        // A partial tail chunk only pays for the lane words it needs.
        let words = chunk.len().div_ceil(LANES);
        let (inputs, vs, vc) = (
            &mut inputs[..n * words],
            &mut vs[..o * words],
            &mut vc[..o * words],
        );
        pack_vectors_words(chunk, n, words, inputs);
        sim.eval_words(inputs, vs, words);
        eval_cover_words_resized(cover, inputs, n, words, &mut resized, vc);
        words_agree(vs, vc, words, chunk.len())
    })
}

/// True if `sim` realizes `cover`: exhaustive up to
/// [`logic::eval::EXHAUSTIVE_LIMIT`] inputs, the canonical deterministic
/// sample ([`logic::eval::sample_assignments`]) beyond. The shared body
/// behind every per-type `implements` method.
pub fn implements_cover(sim: &dyn Simulator, cover: &Cover) -> bool {
    let n = cover.n_inputs().min(sim.n_inputs());
    if n <= EXHAUSTIVE_LIMIT {
        equivalent_to_cover(sim, cover, n)
    } else {
        agrees_on(sim, cover, &logic::eval::sample_assignments(n))
    }
}

/// Evaluate `cover` on lane words produced for a (possibly
/// different-arity) simulator with `n` inputs: excess simulator signals
/// are dropped, missing ones read as 0 — matching what `Cover::eval_bits`
/// did with out-of-range bits held low. The signal-major layout makes the
/// resize a whole-signal copy into the reusable `scratch` buffer.
fn eval_cover_words_resized(
    cover: &Cover,
    inputs: &[u64],
    n: usize,
    words: usize,
    scratch: &mut Vec<u64>,
    out: &mut [u64],
) {
    if cover.n_inputs() == n {
        cover.eval_words(inputs, out, words);
    } else {
        let cn = cover.n_inputs();
        scratch.clear();
        scratch.extend_from_slice(&inputs[..n.min(cn) * words]);
        scratch.resize(cn * words, 0);
        cover.eval_words(scratch, out, words);
    }
}

/// True if the two signal-major output blocks agree on the first `valid`
/// lanes of every output.
fn words_agree(a: &[u64], b: &[u64], words: usize, valid: usize) -> bool {
    assert_eq!(a.len(), b.len(), "output arity mismatch");
    a.chunks_exact(words)
        .zip(b.chunks_exact(words))
        .all(|(x, y)| (0..words).all(|w| (x[w] ^ y[w]) & lane_mask_words(valid, w) == 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pla::GnorPla;

    fn adder() -> (Cover, GnorPla) {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        (f, pla)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let vectors: Vec<u64> = (0..64).map(|v| v * 0x9e37 % 1024).collect();
        let words = pack_vectors(&vectors, 10);
        for (lane, &v) in vectors.iter().enumerate() {
            let bools = unpack_lane(&words, lane);
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(b, v >> i & 1 == 1, "lane {lane} input {i}");
            }
        }
    }

    #[test]
    fn multi_word_pack_unpack_roundtrip() {
        let vectors: Vec<u64> = (0..150).map(|v| v * 0x9e37 % 1024).collect();
        let words = 3;
        let mut packed = vec![0u64; 10 * words];
        pack_vectors_words(&vectors, 10, words, &mut packed);
        for (lane, &v) in vectors.iter().enumerate() {
            let bools = unpack_lane_words(&packed, lane, words);
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(b, v >> i & 1 == 1, "lane {lane} input {i}");
            }
        }
    }

    #[test]
    fn exhaustive_block_enumerates_consecutive_assignments() {
        for base in [0u64, 64, 192] {
            let words = exhaustive_block(base, 9);
            for lane in 0..64 {
                let assignment = base + lane as u64;
                for (i, &w) in words.iter().enumerate() {
                    assert_eq!(
                        w >> lane & 1,
                        assignment >> i & 1,
                        "base {base} lane {lane} input {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_words_enumerates_across_word_boundaries() {
        let (n, words) = (9, 4);
        let mut block = vec![0u64; n * words];
        for base in [0u64, 256] {
            exhaustive_words(base, n, words, &mut block);
            for lane in 0..words * 64 {
                let assignment = base + lane as u64;
                let (w, bit) = (lane / 64, lane % 64);
                for i in 0..n {
                    assert_eq!(
                        block[i * words + w] >> bit & 1,
                        assignment >> i & 1,
                        "base {base} lane {lane} input {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn cover_is_a_simulator() {
        let (f, _) = adder();
        let sim: &dyn Simulator = &f;
        for bits in 0..8u64 {
            assert_eq!(
                sim.simulate_bits(bits),
                f.eval_bits(bits),
                "bits {bits:03b}"
            );
        }
        assert_eq!(sim.n_inputs(), 3);
        assert_eq!(sim.n_outputs(), 2);
    }

    #[test]
    fn provided_scalar_adapters_agree() {
        let (_, pla) = adder();
        for bits in 0..8u64 {
            let explicit: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(pla.simulate(&explicit), pla.simulate_bits(bits));
        }
    }

    #[test]
    fn eval_vectors_matches_scalar() {
        let (_, pla) = adder();
        let vectors: Vec<u64> = (0..8).collect();
        let block = pla.eval_vectors(&vectors);
        for (lane, &bits) in vectors.iter().enumerate() {
            assert_eq!(block[lane], pla.simulate_bits(bits), "bits {bits:03b}");
        }
    }

    #[test]
    fn eval_block_adapter_matches_eval_words() {
        let (_, pla) = adder();
        let vectors: Vec<u64> = (0..64u64).map(|v| v % 8).collect();
        let packed = pack_vectors(&vectors, 3);
        let block = pla.eval_block(&packed);
        let mut out = vec![0u64; 2];
        pla.eval_words(&packed, &mut out, 1);
        assert_eq!(block, out);
    }

    #[test]
    fn equivalent_to_cover_agrees_with_scalar_loop() {
        let (f, pla) = adder();
        assert!(equivalent_to_cover(&pla, &f, 3));
        // Break one driver polarity: the sweep must notice.
        let broken = GnorPla::from_parts(
            pla.input_plane().clone(),
            pla.output_plane().clone(),
            vec![true, false],
        );
        assert!(!equivalent_to_cover(&broken, &f, 3));
    }

    #[test]
    fn check_equivalent_reports_the_first_counterexample() {
        let (f, pla) = adder();
        assert!(check_equivalent(&pla, &f, 3).is_equivalent());
        let broken = GnorPla::from_parts(
            pla.input_plane().clone(),
            pla.output_plane().clone(),
            vec![true, false],
        );
        match check_equivalent(&broken, &f, 3) {
            Equivalence::Counterexample { bits, output } => {
                assert_eq!(output, 1, "the flipped driver is output 1");
                assert_ne!(
                    broken.simulate_bits(bits)[output],
                    f.eval_bits(bits)[output]
                );
            }
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn counterexamples_beyond_the_first_lane_word_are_found() {
        // 9 inputs = 512 assignments = 2 full SWEEP_WORDS steps. A cover
        // differing only at assignment 300 (middle of the second step at
        // SWEEP_WORDS = 4) exercises the multi-word diff scan and the
        // global lane indexing.
        let mut a = Cover::new(9, 1);
        let b = Cover::new(9, 1);
        a.push(logic::Cube::minterm(300, 9, 1));
        match check_equivalent(&a, &b, 9) {
            Equivalence::Counterexample { bits, output } => {
                assert_eq!((bits, output), (300, 0));
            }
            e => panic!("expected counterexample, got {e:?}"),
        }
    }

    #[test]
    fn sub_word_spaces_mask_unused_lanes() {
        // 2 inputs: only 4 of the 64 lanes are meaningful.
        let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        assert!(equivalent_to_cover(&pla, &f, 2));
    }

    #[test]
    fn mismatched_output_arity_is_never_equivalent() {
        // The scalar Vec comparison this sweep replaced returned false for
        // a cover with a different output count; the batch sweep must too
        // (in release builds as well, not via a debug assertion).
        let (_, pla) = adder(); // 3 inputs, 2 outputs
        let narrow = Cover::parse("110 1\n011 1", 3, 1).expect("valid cover");
        assert!(!equivalent_to_cover(&pla, &narrow, 3));
        assert!(!agrees_on(&pla, &narrow, &[0, 1, 2]));
    }

    #[test]
    fn agrees_on_partial_chunks() {
        let (f, pla) = adder();
        let pats: Vec<u64> = (0..300).map(|x| x % 8).collect(); // 256 + 44 tail
        assert!(agrees_on(&pla, &f, &pats));
    }

    #[test]
    fn epoch_oracle_answers_per_epoch() {
        let (f, pla) = adder();
        // Epoch 1 swaps in a visibly different backend: output 1's driver
        // polarity flipped.
        let broken = GnorPla::from_parts(
            pla.input_plane().clone(),
            pla.output_plane().clone(),
            vec![true, false],
        );
        let oracle = EpochOracle::new(std::sync::Arc::new(pla.clone()));
        assert_eq!(oracle.push(std::sync::Arc::new(broken.clone())), 1);
        assert_eq!(oracle.len(), 2);
        assert!(!oracle.is_empty());
        for bits in 0..8u64 {
            assert_eq!(oracle.expected(0, bits), f.eval_bits(bits));
            assert_eq!(oracle.expected(1, bits), broken.simulate_bits(bits));
            assert!(oracle.matches(0, bits, &pla.simulate_bits(bits)));
        }
        // The two eras disagree somewhere, so the per-epoch answers are
        // genuinely distinct.
        assert!((0..8u64).any(|b| oracle.expected(0, b) != oracle.expected(1, b)));
    }

    #[test]
    #[should_panic(expected = "epoch 7 was never recorded")]
    fn epoch_oracle_rejects_unknown_epochs() {
        let (_, pla) = adder();
        EpochOracle::new(std::sync::Arc::new(pla)).expected(7, 0);
    }

    #[test]
    fn implements_cover_samples_beyond_the_exhaustive_limit() {
        // 22 inputs: implements_cover must take the sampled path and still
        // accept the identity pairing.
        let wide = Cover::parse("1111111111111111111111 1\n0000000000000000000000 1", 22, 1)
            .expect("valid cover");
        assert!(implements_cover(&wide, &wide));
    }
}
