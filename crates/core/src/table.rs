//! Materialized truth tables: the O(1) lookup tier for small simulators.
//!
//! For a simulator with `n ≤ ~20` inputs, the complete truth table —
//! `2^n × n_outputs` bits, packed into `u64` lane words — is small enough
//! to build once and serve forever: after one exhaustive sweep every
//! evaluation is a pure indexed load, with no plane cascades, no SOP
//! kernel, and no result cache in the path. [`TruthTable`] is that
//! backing store:
//!
//! * [`TruthTable::from_simulator`] materializes any `&dyn Simulator`
//!   via chunked [`exhaustive_words`] sweeps (buffers reused across
//!   chunks, tail lanes beyond `2^n` canonically zeroed),
//! * the table itself implements [`Simulator`]: its
//!   [`eval_words`](Simulator::eval_words) gathers each lane's packed
//!   assignment from the signal-major input words and answers by index,
//!   so a materialized table is a drop-in backend anywhere a simulator
//!   is accepted — including an `ambipla_serve` registration slot,
//! * [`TruthTable::first_difference`] compares two tables word-at-a-time
//!   in the canonical (assignment, then output) counterexample order,
//!   which is what lets `sim::check_equivalent` answer small-`n`
//!   equivalence queries by table compare,
//! * [`table_bytes`] prices a would-be table without building it — the
//!   number the `ambipla_serve` auto-tiering policy checks against its
//!   `tier_max_table_bytes` budget.
//!
//! # Layout
//!
//! Signal-major, like every other block in the workspace: output `j`
//! owns `stride = ⌈2^n / 64⌉` consecutive words, and the value of output
//! `j` on packed assignment `a` is bit `a % 64` of word
//! `table[j·stride + a/64]`. Words are fully canonical — lanes beyond
//! `2^n` (only possible when `n < 6`) are zero — so two tables of equal
//! function are bit-identical and table equality is `words == words`.

use crate::sim::Simulator;
use logic::eval::{exhaustive_words, first_set_lane_words, lane_mask_words, sweep_words, LANES};

/// Bytes of packed table words a `(n_inputs, n_outputs)` truth table
/// occupies: `⌈2^n / 64⌉ × n_outputs × 8`. Computed in `u128` so the
/// price of an absurd request (`n` up to 63) is still exact rather than
/// a silent overflow — budget checks compare against this directly.
pub fn table_bytes(n_inputs: usize, n_outputs: usize) -> u128 {
    assert!(n_inputs < 64, "truth tables need n_inputs < 64");
    (1u128 << n_inputs).div_ceil(LANES as u128) * 8 * n_outputs as u128
}

/// A complete materialized truth table of a small simulator.
///
/// See the [module docs](self) for the layout and the serving/equivalence
/// roles. Equality is derived: canonical words make bit-equality function
/// equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    n_inputs: usize,
    n_outputs: usize,
    /// Words per output: `⌈2^n / 64⌉`.
    stride: usize,
    /// `n_outputs × stride` packed words, output-major.
    words: Box<[u64]>,
}

impl TruthTable {
    /// Materialize `sim` by exhaustive sweep: evaluate all `2^n`
    /// assignments in [`sweep_words`]-sized chunks through
    /// [`exhaustive_words`], reusing the input/output buffers across
    /// chunks, and mask the final partial word (only possible when
    /// `n < 6`) so the stored words are canonical.
    ///
    /// Cost is one full exhaustive evaluation of `sim` — `2^n` lanes at
    /// the backend's native width. Callers gate on [`table_bytes`]
    /// first; this constructor only enforces the hard arity limit.
    ///
    /// # Panics
    ///
    /// Panics if `sim.n_inputs() >= 64` (the packed-assignment space no
    /// longer fits an index) or if the table's word count overflows the
    /// address space.
    pub fn from_simulator(sim: &dyn Simulator) -> TruthTable {
        let n = sim.n_inputs();
        let o = sim.n_outputs();
        assert!(n < 64, "truth tables need n_inputs < 64");
        let total = 1u64 << n;
        let stride = (total as usize).div_ceil(LANES);
        let mut words = vec![0u64; o.checked_mul(stride).expect("table fits memory")];
        let sweep = sweep_words(n);
        let mut inputs = vec![0u64; n * sweep];
        let mut out = vec![0u64; o * sweep];
        let mut bw = 0usize; // base word index into each output's stride
        while bw < stride {
            let chunk = sweep.min(stride - bw);
            let base = (bw * LANES) as u64;
            exhaustive_words(base, n, chunk, &mut inputs[..n * chunk]);
            sim.eval_words(&inputs[..n * chunk], &mut out[..o * chunk], chunk);
            let valid = (total - base) as usize;
            for j in 0..o {
                for w in 0..chunk {
                    words[j * stride + bw + w] = out[j * chunk + w] & lane_mask_words(valid, w);
                }
            }
            bw += chunk;
        }
        TruthTable {
            n_inputs: n,
            n_outputs: o,
            stride,
            words: words.into_boxed_slice(),
        }
    }

    /// Answer one packed assignment by indexed load: bits of `bits`
    /// above input `n` are ignored, and the returned vector is one
    /// `bool` per output — the same shape as
    /// [`simulate_bits`](Simulator::simulate_bits), without the
    /// pack/evaluate/unpack round trip.
    pub fn lookup_bits(&self, bits: u64) -> Vec<bool> {
        let idx = (bits & ((1u64 << self.n_inputs) - 1)) as usize;
        let (w, b) = (idx / LANES, idx % LANES);
        (0..self.n_outputs)
            .map(|j| self.words[j * self.stride + w] >> b & 1 == 1)
            .collect()
    }

    /// Write output `j`'s value on `bits` for every output into `out`
    /// (reused caller buffer) — the allocation-free form of
    /// [`lookup_bits`](TruthTable::lookup_bits) the serving fast path
    /// uses.
    pub fn lookup_into(&self, bits: u64, out: &mut Vec<bool>) {
        let idx = (bits & ((1u64 << self.n_inputs) - 1)) as usize;
        let (w, b) = (idx / LANES, idx % LANES);
        out.clear();
        out.extend((0..self.n_outputs).map(|j| self.words[j * self.stride + w] >> b & 1 == 1));
    }

    /// Earliest `(assignment, output)` on which two tables differ, in
    /// the canonical counterexample order (lowest assignment first,
    /// lowest output breaking ties) — `None` if the functions are equal.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ.
    pub fn first_difference(&self, other: &TruthTable) -> Option<(u64, usize)> {
        assert_eq!(self.n_inputs, other.n_inputs, "input arity mismatch");
        assert_eq!(self.n_outputs, other.n_outputs, "output arity mismatch");
        let diff =
            |j: usize, w: usize| self.words[j * self.stride + w] ^ other.words[j * self.stride + w];
        first_set_lane_words(diff, self.n_outputs, self.stride, 1usize << self.n_inputs)
            .map(|(lane, output)| (lane as u64, output))
    }

    /// Bytes of packed table words this table holds.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A materialized table is itself a [`Simulator`]: `eval_words` gathers
/// each lane's packed assignment from the signal-major input words and
/// answers every output by indexed load. Garbage tail lanes of a partial
/// block gather a garbage index and produce garbage output lanes — the
/// standard contract; the index is always in range because it is built
/// from exactly `n_inputs` bits.
impl Simulator for TruthTable {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), self.n_inputs * words, "buffer size mismatch");
        assert_eq!(out.len(), self.n_outputs * words, "buffer size mismatch");
        out.fill(0);
        for w in 0..words {
            for bit in 0..LANES {
                let mut idx = 0usize;
                for i in 0..self.n_inputs {
                    idx |= ((inputs[i * words + w] >> bit & 1) as usize) << i;
                }
                let (tw, tb) = (idx / LANES, idx % LANES);
                for j in 0..self.n_outputs {
                    out[j * words + w] |= (self.words[j * self.stride + tw] >> tb & 1) << bit;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::Cover;

    fn xor3() -> Cover {
        Cover::parse("100 1\n010 1\n001 1\n111 1", 3, 1).expect("valid cover")
    }

    #[test]
    fn tables_agree_with_their_source_on_every_assignment() {
        let f = xor3();
        let t = TruthTable::from_simulator(&f);
        for bits in 0..8u64 {
            assert_eq!(
                t.lookup_bits(bits),
                f.simulate_bits(bits),
                "bits {bits:03b}"
            );
            assert_eq!(
                t.simulate_bits(bits),
                f.simulate_bits(bits),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn sub_word_tables_have_canonical_zero_tails() {
        // 3 inputs → 8 valid lanes in a 64-lane word: the other 56 bits
        // must be zero, making equal functions bit-identical tables.
        let t = TruthTable::from_simulator(&xor3());
        let again = TruthTable::from_simulator(&xor3());
        assert_eq!(t, again);
        assert_eq!(t.bytes(), 8);
    }

    #[test]
    fn first_difference_reports_the_lowest_assignment_then_output() {
        let a = TruthTable::from_simulator(&xor3());
        // Differs from xor3 exactly on assignment 0b111 (output 0).
        let parity = Cover::parse("100 1\n010 1\n001 1", 3, 1).expect("valid cover");
        let b = TruthTable::from_simulator(&parity);
        assert_eq!(a.first_difference(&b), Some((0b111, 0)));
        assert_eq!(a.first_difference(&a), None);
    }

    #[test]
    fn table_bytes_prices_without_building() {
        assert_eq!(table_bytes(3, 1), 8);
        assert_eq!(table_bytes(6, 2), 16);
        assert_eq!(table_bytes(12, 16), (1 << 12) / 64 * 8 * 16);
        assert_eq!(table_bytes(40, 4), (1u128 << 40) / 64 * 8 * 4);
    }
}
