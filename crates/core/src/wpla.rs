//! Whirlpool PLA: a four-plane GNOR cascade (Brayton et al., ICCAD 2002).
//!
//! Section 5 of the paper notes that cascading **four** NOR planes instead
//! of two "makes the implementation of WPLAs possible": a Whirlpool PLA is a
//! cyclic arrangement of four NOR planes realizing a 4-level NOR network,
//! which is often more compact than any 2-level form. Because the GNOR
//! plane produces its outputs with **either polarity for free**, the four
//! planes compose without the inter-plane inverters a classical
//! implementation would need.
//!
//! This module provides the architectural container ([`Wpla`]): four
//! [`GnorPlane`]s with matching arities plus per-output driver polarities.
//! Synthesis (Doppio-Espresso-style joint minimization of the two 2-level
//! halves) lives in the `phaseopt` crate.

use crate::area::PlaDimensions;
use crate::gnor::InputPolarity;
use crate::plane::GnorPlane;
use crate::sim::{self, Simulator};
use logic::Cover;

/// A four-plane Whirlpool GNOR PLA.
///
/// Signal flow: primary inputs → plane 1 → plane 2 → plane 3 → plane 4 →
/// per-output drivers. Each plane is a full GNOR array, so each level may
/// pass, invert or drop any of its inputs.
///
/// # Example
///
/// ```
/// use ambipla_core::Wpla;
/// use logic::Cover;
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let wpla = Wpla::buffered_from_cover(&xor);
/// assert!(wpla.implements(&xor));
/// assert_eq!(wpla.planes().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wpla {
    planes: [GnorPlane; 4],
    inverting_outputs: Vec<bool>,
    /// For planes 2..4 (indices 1..4): whether the plane also sees the
    /// primary inputs appended after the previous plane's outputs. Plane 1
    /// always reads the primary inputs.
    primary_taps: [bool; 3],
    n_inputs: usize,
}

impl Wpla {
    /// Assemble a WPLA from four strictly chained planes (no inner plane
    /// sees the primary inputs).
    ///
    /// # Panics
    ///
    /// Panics if consecutive planes' arities do not chain
    /// (`plane[k+1].cols() == plane[k].rows()`) or the driver vector length
    /// differs from the last plane's row count.
    pub fn from_planes(planes: [GnorPlane; 4], inverting_outputs: Vec<bool>) -> Wpla {
        let n_inputs = planes[0].cols();
        Wpla::from_planes_with_taps(planes, inverting_outputs, [false; 3], n_inputs)
    }

    /// Assemble a WPLA in which selected inner planes also tap the primary
    /// inputs (routed around the ring by the Fig. 3 interconnect): plane
    /// `k+2` (for `k` in `0..3`) expects
    /// `planes[k].rows() + (taps[k] ? n_inputs : 0)` columns.
    ///
    /// # Panics
    ///
    /// Panics if plane arities do not chain under the taps, plane 1 does
    /// not have `n_inputs` columns, or the driver vector length differs
    /// from the last plane's row count.
    pub fn from_planes_with_taps(
        planes: [GnorPlane; 4],
        inverting_outputs: Vec<bool>,
        taps: [bool; 3],
        n_inputs: usize,
    ) -> Wpla {
        assert_eq!(planes[0].cols(), n_inputs, "plane 1 reads the inputs");
        for k in 0..3 {
            let expected = planes[k].rows() + if taps[k] { n_inputs } else { 0 };
            assert_eq!(
                planes[k + 1].cols(),
                expected,
                "plane {} output arity must feed plane {}",
                k + 1,
                k + 2
            );
        }
        assert_eq!(
            inverting_outputs.len(),
            planes[3].rows(),
            "one driver polarity per output"
        );
        Wpla {
            planes,
            inverting_outputs,
            primary_taps: taps,
            n_inputs,
        }
    }

    /// Reference construction: realize a two-level cover in planes 3–4 and
    /// make planes 1–2 polarity-preserving buffers.
    ///
    /// This is the correctness baseline the Doppio-Espresso synthesizer
    /// must beat; it proves any 2-level function embeds in the 4-plane
    /// cascade.
    ///
    /// # Panics
    ///
    /// Panics if the cover is empty or has no outputs.
    pub fn buffered_from_cover(cover: &Cover) -> Wpla {
        assert!(!cover.is_empty(), "cover must have product terms");
        assert!(cover.n_outputs() > 0, "cover must have outputs");
        let n = cover.n_inputs();
        // Plane 1: row i = NOR(x̄_i) = x_i? No — NOR over a single inverted
        // input is the input itself: NOR(x̄) = x. One row per input.
        let buf1: Vec<Vec<InputPolarity>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|c| {
                        if c == i {
                            InputPolarity::Invert
                        } else {
                            InputPolarity::Drop
                        }
                    })
                    .collect()
            })
            .collect();
        // Plane 2: the same trick again, keeping polarity.
        let buf2 = buf1.clone();
        // Planes 3–4: the standard GNOR PLA mapping (see crate::pla).
        let two_level = crate::pla::GnorPla::from_cover(cover);
        let planes = [
            GnorPlane::from_controls(buf1),
            GnorPlane::from_controls(buf2),
            two_level.input_plane().clone(),
            two_level.output_plane().clone(),
        ];
        Wpla {
            planes,
            inverting_outputs: two_level.inverting_outputs().to_vec(),
            primary_taps: [false; 3],
            n_inputs: n,
        }
    }

    /// The four planes, in signal order.
    pub fn planes(&self) -> &[GnorPlane; 4] {
        &self.planes
    }

    /// Per-output driver polarities (`true` = inverting).
    pub fn inverting_outputs(&self) -> &[bool] {
        &self.inverting_outputs
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Which inner planes tap the primary inputs (planes 2, 3, 4).
    pub fn primary_taps(&self) -> [bool; 3] {
        self.primary_taps
    }

    /// Number of primary outputs.
    pub fn n_outputs(&self) -> usize {
        self.planes[3].rows()
    }

    /// Total basic-cell count across the four plane arrays.
    pub fn cells(&self) -> usize {
        self.planes.iter().map(|p| p.rows() * p.cols()).sum()
    }

    /// Equivalent flat dimensions for rough area comparison: inputs,
    /// outputs, and the largest intermediate width as "products".
    pub fn dimensions(&self) -> PlaDimensions {
        PlaDimensions {
            inputs: self.n_inputs(),
            outputs: self.n_outputs(),
            products: self.planes.iter().map(GnorPlane::rows).max().unwrap_or(0),
        }
    }

    /// True if the WPLA implements `cover` (exhaustive up to
    /// [`logic::eval::EXHAUSTIVE_LIMIT`] inputs).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn implements(&self, cover: &Cover) -> bool {
        assert_eq!(cover.n_inputs(), self.n_inputs());
        assert_eq!(cover.n_outputs(), self.n_outputs());
        let n = cover.n_inputs().min(logic::eval::EXHAUSTIVE_LIMIT);
        sim::equivalent_to_cover(self, cover, n)
    }
}

impl Simulator for Wpla {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn n_outputs(&self) -> usize {
        self.planes[3].rows()
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert_eq!(inputs.len(), self.n_inputs * words, "input arity mismatch");
        assert_eq!(
            out.len(),
            self.planes[3].rows() * words,
            "output buffer size mismatch"
        );
        // Two ping-pong stage buffers per call; a primary tap appends the
        // input signals, which the signal-major layout makes a plain copy.
        let mut signal = vec![0u64; self.planes[0].rows() * words];
        self.planes[0].evaluate_words(inputs, &mut signal, words);
        let mut next = Vec::new();
        for (k, plane) in self.planes.iter().enumerate().skip(1) {
            if self.primary_taps[k - 1] {
                signal.extend_from_slice(inputs);
            }
            next.clear();
            next.resize(plane.rows() * words, 0);
            plane.evaluate_words(&signal, &mut next, words);
            std::mem::swap(&mut signal, &mut next);
        }
        for ((orow, srow), &inv) in out
            .chunks_exact_mut(words)
            .zip(signal.chunks_exact(words))
            .zip(&self.inverting_outputs)
        {
            for (o, &s) in orow.iter_mut().zip(srow) {
                *o = if inv { !s } else { s };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn buffered_wpla_implements_xor() {
        let f = cover("10 1\n01 1", 2, 1);
        let w = Wpla::buffered_from_cover(&f);
        assert!(w.implements(&f));
        assert_eq!(w.n_inputs(), 2);
        assert_eq!(w.n_outputs(), 1);
    }

    #[test]
    fn buffered_wpla_implements_full_adder() {
        let f = cover(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        );
        let w = Wpla::buffered_from_cover(&f);
        assert!(w.implements(&f));
    }

    #[test]
    fn plane_arities_chain() {
        let f = cover("1-0 11\n-11 01", 3, 2);
        let w = Wpla::buffered_from_cover(&f);
        let p = w.planes();
        for k in 0..3 {
            assert_eq!(p[k + 1].cols(), p[k].rows());
        }
    }

    #[test]
    fn cells_count_all_four_planes() {
        let f = cover("10 1\n01 1", 2, 1);
        let w = Wpla::buffered_from_cover(&f);
        // plane1 2x2 + plane2 2x2 + plane3 2x2 + plane4 1x2.
        assert_eq!(w.cells(), 4 + 4 + 4 + 2);
    }

    #[test]
    fn simulate_bits_matches_simulate() {
        let f = cover("1-0 10\n011 01", 3, 2);
        let w = Wpla::buffered_from_cover(&f);
        for bits in 0..8u64 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(w.simulate(&x), w.simulate_bits(bits));
        }
    }

    #[test]
    #[should_panic(expected = "must feed plane")]
    fn mismatched_planes_rejected() {
        let p1 = GnorPlane::unconfigured(2, 3);
        let p2 = GnorPlane::unconfigured(2, 5); // wrong: needs 2 cols
        let p3 = GnorPlane::unconfigured(2, 2);
        let p4 = GnorPlane::unconfigured(1, 2);
        let _ = Wpla::from_planes([p1, p2, p3, p4], vec![true]);
    }
}
