//! Configuration bitstreams for GNOR PLAs.
//!
//! A deployed programmable array needs its configuration in a durable,
//! checkable exchange form. The bitstream packs each crosspoint's polarity
//! control in two bits (`00` drop / `01` pass / `10` invert), plus the
//! driver polarities and an FNV-1a integrity checksum:
//!
//! ```text
//! magic "AGPL" | ver u8 | inputs u16 | outputs u16 | products u16
//! | driver bits ceil(o/8) | plane1 codes | plane2 codes | fnv1a u32
//! ```
//!
//! All multi-byte fields are little-endian. Decoding validates structure,
//! codes and checksum, so a corrupted bitstream never silently programs an
//! array.

use crate::gnor::InputPolarity;
use crate::pla::GnorPla;
use crate::plane::GnorPlane;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"AGPL";
const VERSION: u8 = 1;

/// Error decoding a configuration bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitstreamError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion {
        /// Version found in the stream.
        found: u8,
    },
    /// The stream is shorter than its header promises.
    Truncated,
    /// A two-bit device code was `11` (reserved).
    InvalidCode {
        /// Byte offset of the offending code.
        offset: usize,
    },
    /// Integrity checksum mismatch.
    ChecksumMismatch,
    /// Header declares a zero-sized array.
    EmptyArray,
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::BadMagic => write!(f, "bad magic (not an AGPL bitstream)"),
            BitstreamError::BadVersion { found } => write!(f, "unsupported version {found}"),
            BitstreamError::Truncated => write!(f, "bitstream truncated"),
            BitstreamError::InvalidCode { offset } => {
                write!(f, "invalid device code at byte {offset}")
            }
            BitstreamError::ChecksumMismatch => write!(f, "checksum mismatch"),
            BitstreamError::EmptyArray => write!(f, "bitstream declares an empty array"),
        }
    }
}

impl Error for BitstreamError {}

fn code_of(p: InputPolarity) -> u8 {
    match p {
        InputPolarity::Drop => 0b00,
        InputPolarity::Pass => 0b01,
        InputPolarity::Invert => 0b10,
    }
}

fn polarity_of(code: u8) -> Option<InputPolarity> {
    match code {
        0b00 => Some(InputPolarity::Drop),
        0b01 => Some(InputPolarity::Pass),
        0b10 => Some(InputPolarity::Invert),
        _ => None,
    }
}

/// Serialize a PLA configuration to its bitstream.
pub fn to_bitstream(pla: &GnorPla) -> Vec<u8> {
    let dims = pla.dimensions();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(dims.inputs as u16).to_le_bytes());
    out.extend_from_slice(&(dims.outputs as u16).to_le_bytes());
    out.extend_from_slice(&(dims.products as u16).to_le_bytes());
    // Driver polarities.
    let mut byte = 0u8;
    for (j, &inv) in pla.inverting_outputs().iter().enumerate() {
        if inv {
            byte |= 1 << (j % 8);
        }
        if j % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !dims.outputs.is_multiple_of(8) {
        out.push(byte);
    }
    // Device codes, 4 per byte, plane 1 then plane 2.
    let mut pack = CodePacker::new(&mut out);
    for r in 0..dims.products {
        for i in 0..dims.inputs {
            pack.push(code_of(pla.input_plane().gate(r).control(i)));
        }
    }
    for j in 0..dims.outputs {
        for r in 0..dims.products {
            pack.push(code_of(pla.output_plane().gate(j).control(r)));
        }
    }
    pack.finish();
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode a bitstream back into a PLA configuration.
///
/// # Errors
///
/// See [`BitstreamError`].
pub fn from_bitstream(bytes: &[u8]) -> Result<GnorPla, BitstreamError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(BitstreamError::BadMagic);
    }
    if bytes.len() < 11 + 4 {
        return Err(BitstreamError::Truncated);
    }
    let version = bytes[4];
    if version != VERSION {
        return Err(BitstreamError::BadVersion { found: version });
    }
    let inputs = u16::from_le_bytes([bytes[5], bytes[6]]) as usize;
    let outputs = u16::from_le_bytes([bytes[7], bytes[8]]) as usize;
    let products = u16::from_le_bytes([bytes[9], bytes[10]]) as usize;
    if inputs == 0 || outputs == 0 || products == 0 {
        return Err(BitstreamError::EmptyArray);
    }
    let driver_bytes = outputs.div_ceil(8);
    let codes = products * inputs + outputs * products;
    let code_bytes = codes.div_ceil(4);
    let expect = 11 + driver_bytes + code_bytes + 4;
    if bytes.len() != expect {
        return Err(BitstreamError::Truncated);
    }
    // Checksum first: everything before the trailing u32.
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if fnv1a(body) != stored {
        return Err(BitstreamError::ChecksumMismatch);
    }
    // Drivers.
    let mut inverting = Vec::with_capacity(outputs);
    for j in 0..outputs {
        let b = bytes[11 + j / 8];
        inverting.push(b >> (j % 8) & 1 == 1);
    }
    // Codes.
    let code_base = 11 + driver_bytes;
    let read = |k: usize| -> Result<InputPolarity, BitstreamError> {
        let byte = bytes[code_base + k / 4];
        let code = byte >> (2 * (k % 4)) & 0b11;
        polarity_of(code).ok_or(BitstreamError::InvalidCode {
            offset: code_base + k / 4,
        })
    };
    let mut k = 0usize;
    let mut plane1 = Vec::with_capacity(products);
    for _ in 0..products {
        let mut row = Vec::with_capacity(inputs);
        for _ in 0..inputs {
            row.push(read(k)?);
            k += 1;
        }
        plane1.push(row);
    }
    let mut plane2 = Vec::with_capacity(outputs);
    for _ in 0..outputs {
        let mut row = Vec::with_capacity(products);
        for _ in 0..products {
            row.push(read(k)?);
            k += 1;
        }
        plane2.push(row);
    }
    Ok(GnorPla::from_parts(
        GnorPlane::from_controls(plane1),
        GnorPlane::from_controls(plane2),
        inverting,
    ))
}

struct CodePacker<'a> {
    out: &'a mut Vec<u8>,
    byte: u8,
    filled: u8,
}

impl<'a> CodePacker<'a> {
    fn new(out: &'a mut Vec<u8>) -> CodePacker<'a> {
        CodePacker {
            out,
            byte: 0,
            filled: 0,
        }
    }

    fn push(&mut self, code: u8) {
        self.byte |= code << (2 * self.filled);
        self.filled += 1;
        if self.filled == 4 {
            self.out.push(self.byte);
            self.byte = 0;
            self.filled = 0;
        }
    }

    fn finish(self) {
        if self.filled > 0 {
            self.out.push(self.byte);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::Cover;

    fn sample() -> GnorPla {
        let f = Cover::parse("10- 10\n-01 01\n11- 11", 3, 2).unwrap();
        GnorPla::from_cover(&f)
    }

    #[test]
    fn roundtrip_is_identity() {
        let pla = sample();
        let bits = to_bitstream(&pla);
        let back = from_bitstream(&bits).expect("valid stream");
        assert_eq!(back, pla);
    }

    #[test]
    fn roundtrip_preserves_function() {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .unwrap();
        let pla = GnorPla::from_cover(&f);
        let back = from_bitstream(&to_bitstream(&pla)).unwrap();
        assert!(back.implements(&f));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bits = to_bitstream(&sample());
        bits[0] = b'X';
        assert_eq!(from_bitstream(&bits), Err(BitstreamError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bits = to_bitstream(&sample());
        bits[4] = 99;
        assert_eq!(
            from_bitstream(&bits),
            Err(BitstreamError::BadVersion { found: 99 })
        );
    }

    #[test]
    fn truncation_rejected() {
        let bits = to_bitstream(&sample());
        assert_eq!(
            from_bitstream(&bits[..bits.len() - 3]),
            Err(BitstreamError::Truncated)
        );
        assert_eq!(from_bitstream(&bits[..8]), Err(BitstreamError::Truncated));
    }

    #[test]
    fn corruption_is_detected() {
        let mut bits = to_bitstream(&sample());
        // Flip bits inside the code section (after the 11-byte header and
        // 1 driver byte) so the structure stays parseable.
        bits[13] ^= 0x41;
        assert_eq!(from_bitstream(&bits), Err(BitstreamError::ChecksumMismatch));
    }

    #[test]
    fn empty_array_rejected() {
        let mut bits = to_bitstream(&sample());
        // Zero out the product count and re-seal the checksum.
        bits[9] = 0;
        bits[10] = 0;
        let body_len = bits.len() - 4;
        let sum = fnv1a(&bits[..body_len]);
        let tail = bits.len() - 4;
        bits[tail..].copy_from_slice(&sum.to_le_bytes());
        // Either Truncated (length check) or EmptyArray; both reject.
        assert!(from_bitstream(&bits).is_err());
    }

    #[test]
    fn stream_size_is_compact() {
        // 3 products x 3 inputs + 2 outputs x 3 products = 15 codes →
        // 4 bytes; header 11 + drivers 1 + checksum 4 = 20 bytes total.
        let bits = to_bitstream(&sample());
        assert_eq!(bits.len(), 20);
    }

    #[test]
    fn all_polarity_codes_roundtrip() {
        use crate::gnor::InputPolarity::*;
        for p in [Drop, Pass, Invert] {
            assert_eq!(polarity_of(code_of(p)), Some(p));
        }
        assert_eq!(polarity_of(0b11), None);
    }
}
