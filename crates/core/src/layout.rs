//! Physical floorplans of PLA arrays in lithography units.
//!
//! Turns the logical [`PlaDimensions`] into rectangle geometry using the
//! contacted-cell sizes of [`cnfet::tech`]: column count × cell width by
//! product count × cell height. Consistency with the Table 1 area model is
//! pinned by tests (`floorplan area == Technology::pla_area`). Also
//! estimates total wire length — the quantity behind the routing/delay
//! argument of Section 5 — and an approximate Whirlpool ring floorplan.

use crate::area::{PlaDimensions, Technology};
use crate::wpla::Wpla;
use std::fmt;

/// A rectangular array floorplan in units of the lithography pitch `L`.
///
/// # Example
///
/// ```
/// use ambipla_core::{Floorplan, PlaDimensions, Technology};
///
/// let dims = PlaDimensions { inputs: 9, outputs: 1, products: 46 };
/// let fp = Floorplan::of_pla(dims, Technology::CnfetGnor);
/// assert_eq!(fp.area_l2(), Technology::CnfetGnor.pla_area(dims));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    /// Width, `L`.
    pub width_l: f64,
    /// Height, `L`.
    pub height_l: f64,
    /// Total wire length across the array (row wires + column wires), `L`.
    pub wire_length_l: f64,
}

impl Floorplan {
    /// Floorplan of a PLA of `dims` in `tech` (classical technologies pay
    /// the complement columns).
    pub fn of_pla(dims: PlaDimensions, tech: Technology) -> Floorplan {
        let cell = tech.cell();
        let cols = if tech.needs_complement_columns() {
            dims.column_count_classical()
        } else {
            dims.column_count_cnfet()
        } as f64;
        let rows = dims.products as f64;
        let width = cols * cell.width_l as f64;
        let height = rows * cell.height_l as f64;
        Floorplan {
            width_l: width,
            height_l: height,
            // Every row wire spans the width; every column wire the height.
            wire_length_l: rows * width + cols * height,
        }
    }

    /// Approximate floorplan of a Whirlpool ring: the four planes are
    /// arranged around the center, so the bounding box is near-square with
    /// area `Σ plane cells · cell area / utilization` (ring packing leaves
    /// the center corner gaps, utilization ≈ 0.8).
    pub fn of_wpla(wpla: &Wpla) -> Floorplan {
        let cell = Technology::CnfetGnor.cell();
        let cell_area = cell.area_l2() as f64;
        let area = wpla.cells() as f64 * cell_area / 0.8;
        let side = area.sqrt();
        // Wire estimate: each plane's rows and columns span ~half the side.
        let wire: f64 = wpla
            .planes()
            .iter()
            .map(|p| (p.rows() + p.cols()) as f64 * side / 2.0)
            .sum();
        Floorplan {
            width_l: side,
            height_l: side,
            wire_length_l: wire,
        }
    }

    /// Area, `L²`.
    pub fn area_l2(&self) -> f64 {
        self.width_l * self.height_l
    }

    /// Aspect ratio `max(w,h)/min(w,h)` (1.0 = square).
    pub fn aspect_ratio(&self) -> f64 {
        let (a, b) = (self.width_l, self.height_l);
        a.max(b) / a.min(b).max(f64::MIN_POSITIVE)
    }

    /// Physical width in nanometres at lithography pitch `litho_nm`.
    pub fn width_nm(&self, litho_nm: f64) -> f64 {
        self.width_l * litho_nm
    }

    /// Physical height in nanometres at lithography pitch `litho_nm`.
    pub fn height_nm(&self, litho_nm: f64) -> f64 {
        self.height_l * litho_nm
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}L x {:.0}L ({:.0} L^2, wires {:.0} L)",
            self.width_l,
            self.height_l,
            self.area_l2(),
            self.wire_length_l
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::Cover;

    const MAX46: PlaDimensions = PlaDimensions {
        inputs: 9,
        outputs: 1,
        products: 46,
    };

    #[test]
    fn floorplan_area_matches_table1_model() {
        for tech in Technology::ALL {
            let fp = Floorplan::of_pla(MAX46, tech);
            assert!(
                (fp.area_l2() - tech.pla_area(MAX46)).abs() < 1e-9,
                "{tech}: floorplan {} vs model {}",
                fp.area_l2(),
                tech.pla_area(MAX46)
            );
        }
    }

    #[test]
    fn cnfet_is_narrower_than_flash() {
        // Fewer columns → narrower array, same row count.
        let gnor = Floorplan::of_pla(MAX46, Technology::CnfetGnor);
        let flash = Floorplan::of_pla(MAX46, Technology::Flash);
        // 10 cols * 6L = 60L vs 19 cols * 5L = 95L.
        assert!(gnor.width_l < flash.width_l);
    }

    #[test]
    fn wire_length_tracks_dimensions() {
        let fp = Floorplan::of_pla(MAX46, Technology::CnfetGnor);
        let rows = 46.0;
        let cols = 10.0;
        assert!((fp.wire_length_l - (rows * fp.width_l + cols * fp.height_l)).abs() < 1e-9);
    }

    #[test]
    fn wpla_ring_is_square() {
        let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
        let w = Wpla::buffered_from_cover(&f);
        let fp = Floorplan::of_wpla(&w);
        assert!((fp.aspect_ratio() - 1.0).abs() < 1e-9);
        assert!(fp.area_l2() > w.cells() as f64 * 60.0, "packing overhead");
    }

    #[test]
    fn flat_tall_pla_has_worse_aspect_than_ring() {
        // A 1-output, many-product PLA is a tall strip; the ring is square.
        let f = Cover::parse(
            "1000 1\n0100 1\n0010 1\n0001 1\n1110 1\n1101 1\n1011 1\n0111 1",
            4,
            1,
        )
        .unwrap();
        let flat = Floorplan::of_pla(
            PlaDimensions {
                inputs: 4,
                outputs: 1,
                products: 8,
            },
            Technology::CnfetGnor,
        );
        let ring = Floorplan::of_wpla(&Wpla::buffered_from_cover(&f));
        assert!(flat.aspect_ratio() > ring.aspect_ratio());
    }

    #[test]
    fn physical_scaling() {
        let fp = Floorplan::of_pla(MAX46, Technology::CnfetGnor);
        assert!((fp.width_nm(32.0) - fp.width_l * 32.0).abs() < 1e-9);
        assert!((fp.height_nm(16.0) - fp.height_l * 16.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let fp = Floorplan::of_pla(MAX46, Technology::CnfetGnor);
        let s = fp.to_string();
        assert!(s.contains("L^2"));
        assert!(s.contains("wires"));
    }
}
