//! Interleaved PLA + interconnect cascades (Fig. 3):
//! "Interleaving PLA and interconnects enables cascades of NOR planes and
//! realizes any logic function."
//!
//! A [`PlaNetwork`] is an alternating sequence of [`GnorPla`] stages and
//! programmed [`Crossbar`]s routing each stage's outputs (plus optionally
//! pass-through primary inputs) to the next stage's inputs. The builder
//! validates arities and full connectivity, so a constructed network never
//! floats an input.

use crate::crossbar::Crossbar;
use crate::pla::GnorPla;
use crate::sim::Simulator;
use logic::Cover;
use std::error::Error;
use std::fmt;

/// Error building a [`PlaNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The crossbar between stages `stage` and `stage + 1` leaves input
    /// `input` of the next stage undriven.
    UndrivenInput {
        /// Index of the upstream stage.
        stage: usize,
        /// The floating input of the downstream stage.
        input: usize,
    },
    /// The crossbar's wire counts do not match the adjacent stages.
    ArityMismatch {
        /// Index of the upstream stage.
        stage: usize,
    },
    /// A crossbar shorts two drivers onto one vertical wire.
    Short {
        /// Index of the upstream stage.
        stage: usize,
        /// The contested vertical wire.
        vertical: usize,
    },
    /// The network has no stages.
    Empty,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UndrivenInput { stage, input } => {
                write!(f, "input {input} after stage {stage} is undriven")
            }
            NetworkError::ArityMismatch { stage } => {
                write!(f, "crossbar after stage {stage} has mismatched wire counts")
            }
            NetworkError::Short { stage, vertical } => {
                write!(f, "crossbar after stage {stage} shorts vertical {vertical}")
            }
            NetworkError::Empty => write!(f, "network has no stages"),
        }
    }
}

impl Error for NetworkError {}

/// A cascade of GNOR PLAs joined by programmed crossbars.
///
/// # Example
///
/// ```
/// use ambipla_core::{PlaNetwork, Simulator};
/// use logic::Cover;
///
/// // Two buffer stages chained with identity routing.
/// let buf = Cover::parse("1- 10\n-1 01", 2, 2).unwrap();
/// let net = PlaNetwork::chain_of_covers(&[buf.clone(), buf]);
/// assert_eq!(net.simulate(&[true, false]), vec![true, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaNetwork {
    stages: Vec<GnorPla>,
    /// `links[k]` routes stage `k`'s outputs to stage `k+1`'s inputs;
    /// `links.len() == stages.len() - 1`.
    links: Vec<Crossbar>,
    /// `driver_maps[k][v]` is the horizontal wire driving vertical `v` of
    /// `links[k]` — the builder-validated (short- and float-free) routing
    /// resolved once, so block evaluation never rescans a crossbar.
    driver_maps: Vec<Vec<usize>>,
}

impl PlaNetwork {
    /// Build a network, validating connectivity.
    ///
    /// # Errors
    ///
    /// See [`NetworkError`]: empty network, arity mismatches, undriven
    /// inputs, or shorted crossbar verticals.
    pub fn new(stages: Vec<GnorPla>, links: Vec<Crossbar>) -> Result<PlaNetwork, NetworkError> {
        if stages.is_empty() {
            return Err(NetworkError::Empty);
        }
        if links.len() != stages.len() - 1 {
            return Err(NetworkError::ArityMismatch { stage: links.len() });
        }
        let mut driver_maps = Vec::with_capacity(links.len());
        for (k, link) in links.iter().enumerate() {
            let up = stages[k].dimensions().outputs;
            let down = stages[k + 1].dimensions().inputs;
            if link.horizontals() != up || link.verticals() != down {
                return Err(NetworkError::ArityMismatch { stage: k });
            }
            // Resolve the routing once: shorts and floats surface here,
            // and the validated map is what block evaluation indexes.
            match link.driver_map() {
                Err(crate::crossbar::RouteError::MultipleDrivers { vertical }) => {
                    return Err(NetworkError::Short { stage: k, vertical })
                }
                Ok(drivers) => {
                    if let Some(input) = drivers.iter().position(Option::is_none) {
                        return Err(NetworkError::UndrivenInput { stage: k, input });
                    }
                    driver_maps.push(drivers.into_iter().flatten().collect());
                }
            }
        }
        Ok(PlaNetwork {
            stages,
            links,
            driver_maps,
        })
    }

    /// Convenience: chain covers with identity routing (output `i` of each
    /// stage feeds input `i` of the next).
    ///
    /// # Panics
    ///
    /// Panics if consecutive covers' arities do not chain or any cover is
    /// empty.
    pub fn chain_of_covers(covers: &[Cover]) -> PlaNetwork {
        assert!(!covers.is_empty(), "need at least one cover");
        let stages: Vec<GnorPla> = covers.iter().map(GnorPla::from_cover).collect();
        let mut links = Vec::new();
        for k in 0..stages.len() - 1 {
            let up = stages[k].dimensions().outputs;
            let down = stages[k + 1].dimensions().inputs;
            assert_eq!(
                up,
                down,
                "stage {k} outputs must match stage {} inputs",
                k + 1
            );
            let mut x = Crossbar::new(up, down);
            for i in 0..up {
                x.connect(i, i);
            }
            links.push(x);
        }
        PlaNetwork::new(stages, links).expect("identity chains are valid")
    }

    /// Number of PLA stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Primary input count (stage 0's inputs).
    pub fn n_inputs(&self) -> usize {
        self.stages[0].dimensions().inputs
    }

    /// Primary output count (last stage's outputs).
    pub fn n_outputs(&self) -> usize {
        self.stages[self.stages.len() - 1].dimensions().outputs
    }

    /// The stages.
    pub fn stages(&self) -> &[GnorPla] {
        &self.stages
    }

    /// Total programmed devices (PLA planes + crosspoints).
    pub fn active_devices(&self) -> usize {
        let pla: usize = self.stages.iter().map(GnorPla::active_devices).sum();
        let xbar: usize = self.links.iter().map(Crossbar::connection_count).sum();
        pla + xbar
    }
}

impl Simulator for PlaNetwork {
    fn n_inputs(&self) -> usize {
        PlaNetwork::n_inputs(self)
    }

    fn n_outputs(&self) -> usize {
        PlaNetwork::n_outputs(self)
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        let last = self.stages.len() - 1;
        if last == 0 {
            self.stages[0].eval_words(inputs, out, words);
            return;
        }
        // Ping-pong stage/routing buffers per call; routing indexes the
        // driver maps the builder resolved and validated (short- and
        // float-free), so no crossbar is rescanned per block.
        let mut signal = vec![0u64; Simulator::n_outputs(&self.stages[0]) * words];
        self.stages[0].eval_words(inputs, &mut signal, words);
        let mut routed = Vec::new();
        for (k, (drivers, stage)) in self
            .driver_maps
            .iter()
            .zip(self.stages.iter().skip(1))
            .enumerate()
        {
            routed.clear();
            routed.resize(drivers.len() * words, 0);
            for (&h, vrow) in drivers.iter().zip(routed.chunks_exact_mut(words)) {
                vrow.copy_from_slice(&signal[h * words..(h + 1) * words]);
            }
            if k + 1 == last {
                stage.eval_words(&routed, out, words);
            } else {
                signal.clear();
                signal.resize(Simulator::n_outputs(stage) * words, 0);
                stage.eval_words(&routed, &mut signal, words);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn two_stage_composition() {
        // Stage 1: (x0 XOR x1, x0 AND x1) — a half adder.
        let s1 = cover("10 10\n01 10\n11 01", 2, 2);
        // Stage 2: swap the two signals.
        let s2 = cover("1- 01\n-1 10", 2, 2);
        let net = PlaNetwork::chain_of_covers(&[s1.clone(), s2]);
        for bits in 0..4u64 {
            let inner = s1.eval_bits(bits);
            let got = Simulator::simulate_bits(&net, bits);
            assert_eq!(got, vec![inner[1], inner[0]], "bits {bits:02b}");
        }
    }

    #[test]
    fn three_stage_identity_chain_is_identity() {
        // Buffer cover: out_i = in_i via two inversions… single-stage GNOR
        // buffer: out_j = NOR(NOR(x_j)) with inverting driver = x_j.
        let buf = cover("1- 10\n-1 01", 2, 2);
        let net = PlaNetwork::chain_of_covers(&[buf.clone(), buf.clone(), buf]);
        assert_eq!(net.n_stages(), 3);
        for bits in 0..4u64 {
            let want = vec![bits & 1 == 1, bits >> 1 & 1 == 1];
            assert_eq!(Simulator::simulate_bits(&net, bits), want);
        }
    }

    #[test]
    fn undriven_input_is_rejected() {
        let s1 = GnorPla::from_cover(&cover("1- 10\n-1 01", 2, 2));
        let s2 = GnorPla::from_cover(&cover("1- 10\n-1 01", 2, 2));
        let x = Crossbar::new(2, 2); // nothing connected
        assert_eq!(
            PlaNetwork::new(vec![s1, s2], vec![x]),
            Err(NetworkError::UndrivenInput { stage: 0, input: 0 })
        );
    }

    #[test]
    fn shorted_crossbar_is_rejected() {
        let s1 = GnorPla::from_cover(&cover("1- 10\n-1 01", 2, 2));
        let s2 = GnorPla::from_cover(&cover("1- 10\n-1 01", 2, 2));
        let mut x = Crossbar::new(2, 2);
        x.connect(0, 0);
        x.connect(1, 0);
        x.connect(0, 1);
        assert_eq!(
            PlaNetwork::new(vec![s1, s2], vec![x]),
            Err(NetworkError::Short {
                stage: 0,
                vertical: 0
            })
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let s1 = GnorPla::from_cover(&cover("1- 10\n-1 01", 2, 2));
        let s2 = GnorPla::from_cover(&cover("1-- 1\n-1- 1", 3, 1));
        let x = Crossbar::new(2, 2); // downstream wants 3 inputs
        assert!(matches!(
            PlaNetwork::new(vec![s1, s2], vec![x]),
            Err(NetworkError::ArityMismatch { stage: 0 })
        ));
    }

    #[test]
    fn empty_network_is_rejected() {
        assert_eq!(PlaNetwork::new(vec![], vec![]), Err(NetworkError::Empty));
    }

    #[test]
    fn device_count_includes_crosspoints() {
        let buf = cover("1- 10\n-1 01", 2, 2);
        let net = PlaNetwork::chain_of_covers(&[buf.clone(), buf]);
        let single = GnorPla::from_cover(&cover("1- 10\n-1 01", 2, 2)).active_devices();
        assert_eq!(net.active_devices(), 2 * single + 2);
    }
}
