//! The generalized NOR (GNOR) gate.
//!
//! A GNOR gate is a dynamic-logic pull-down column of ambipolar CNFETs, one
//! per input, plus a precharge transistor `TPC` and an evaluation transistor
//! `TEV` of opposite polarities (Fig. 2). Each input device's polarity gate
//! is programmed to one of the three levels, which selects how the input
//! enters the NOR:
//!
//! | PG level | device | effect on input `x` |
//! |----------|--------|---------------------|
//! | `V+`     | n-type | participates as `x` |
//! | `V−`     | p-type | participates as `x̄` |
//! | `V0`     | off    | dropped             |
//!
//! so the configured gate computes `Y = NOR(Cᵢ ⊕ xᵢ)` over the participating
//! inputs — the paper writes `NOR(C1 ⊕ A, C2 ⊕ B) = EXOR` for a suitable
//! choice of controls.

use cnfet::{AmbipolarCnfet, PgLevel};
use std::fmt;

/// Per-input polarity control of a GNOR gate.
///
/// This is the logical view of the PG level programmed into the input's
/// ambipolar CNFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InputPolarity {
    /// `Cᵢ = 0` (PG = `V+`, n-type): the input participates as `x`.
    Pass,
    /// `Cᵢ = 1` (PG = `V−`, p-type): the input participates as `x̄`.
    Invert,
    /// PG = `V0`: the input is dropped from the function.
    #[default]
    Drop,
}

impl InputPolarity {
    /// The PG level that programs this control.
    pub fn pg_level(self) -> PgLevel {
        match self {
            InputPolarity::Pass => PgLevel::VPlus,
            InputPolarity::Invert => PgLevel::VMinus,
            InputPolarity::Drop => PgLevel::VZero,
        }
    }

    /// The control corresponding to a PG level.
    pub fn from_pg_level(level: PgLevel) -> InputPolarity {
        match level {
            PgLevel::VPlus => InputPolarity::Pass,
            PgLevel::VMinus => InputPolarity::Invert,
            PgLevel::VZero => InputPolarity::Drop,
        }
    }

    /// True if the input participates in the NOR.
    pub fn is_active(self) -> bool {
        !matches!(self, InputPolarity::Drop)
    }
}

impl fmt::Display for InputPolarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InputPolarity::Pass => "pass",
            InputPolarity::Invert => "invert",
            InputPolarity::Drop => "drop",
        };
        write!(f, "{s}")
    }
}

/// A configured combinational GNOR gate.
///
/// # Example
///
/// The paper's Fig. 2 configuration, `Y = NOR(A, B̄, D)` with input `C`
/// inhibited:
///
/// ```
/// use ambipla_core::{GnorGate, InputPolarity::*};
///
/// let gate = GnorGate::new(vec![Pass, Invert, Drop, Pass]);
/// // Y is low iff A, !B or D is high.
/// assert!(!gate.evaluate(&[true, true, false, false])); // A high → 0
/// assert!(!gate.evaluate(&[false, false, false, false])); // B low → B̄ high → 0
/// assert!(gate.evaluate(&[false, true, true, false])); // only C high → ignored → 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GnorGate {
    controls: Vec<InputPolarity>,
}

impl GnorGate {
    /// A gate with the given per-input controls.
    pub fn new(controls: Vec<InputPolarity>) -> GnorGate {
        GnorGate { controls }
    }

    /// An unconfigured gate (all inputs dropped) over `n` inputs.
    ///
    /// An all-dropped dynamic NOR never discharges: it evaluates to constant
    /// 1.
    pub fn unconfigured(n: usize) -> GnorGate {
        GnorGate {
            controls: vec![InputPolarity::Drop; n],
        }
    }

    /// Number of input columns (including dropped ones).
    pub fn width(&self) -> usize {
        self.controls.len()
    }

    /// The control of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn control(&self, i: usize) -> InputPolarity {
        self.controls[i]
    }

    /// All controls.
    pub fn controls(&self) -> &[InputPolarity] {
        &self.controls
    }

    /// Set the control of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_control(&mut self, i: usize, c: InputPolarity) {
        self.controls[i] = c;
    }

    /// Number of participating (non-dropped) inputs.
    pub fn active_inputs(&self) -> usize {
        self.controls.iter().filter(|c| c.is_active()).count()
    }

    /// Combinational evaluation: `Y = NOR(Cᵢ ⊕ xᵢ)` over active inputs.
    ///
    /// An all-dropped gate returns `true` (the precharged level survives).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width()`.
    pub fn evaluate(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.width(), "input arity mismatch");
        !self.controls.iter().zip(inputs).any(|(c, &x)| match c {
            InputPolarity::Pass => x,
            InputPolarity::Invert => !x,
            InputPolarity::Drop => false,
        })
    }

    /// Width-generic bit-parallel evaluation: `inputs[i·words + w]`
    /// carries lanes `w·64 .. (w+1)·64` of input `i`, and `out` (length
    /// `words`) receives the gate output in the same lane order. Each
    /// control is decoded once per call, so wider blocks amortize the
    /// per-literal branch over `words × 64` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`, `inputs.len() != width() × words`, or
    /// `out.len() != words`.
    pub fn evaluate_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), self.width() * words, "input arity mismatch");
        assert_eq!(out.len(), words, "one output word per lane word");
        // `out` doubles as the discharge accumulator.
        out.fill(0);
        for (i, c) in self.controls.iter().enumerate() {
            let row = &inputs[i * words..(i + 1) * words];
            match c {
                InputPolarity::Pass => {
                    for (o, &x) in out.iter_mut().zip(row) {
                        *o |= x;
                    }
                }
                InputPolarity::Invert => {
                    for (o, &x) in out.iter_mut().zip(row) {
                        *o |= !x;
                    }
                }
                InputPolarity::Drop => {}
            }
        }
        for o in out.iter_mut() {
            *o = !*o;
        }
    }

    /// Bit-parallel evaluation over 64 lanes: word `inputs[i]` carries
    /// input `i` of every lane, and the returned word carries the gate
    /// output per lane — [`GnorGate::evaluate_words`] with `words = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != width()`.
    pub fn evaluate_batch(&self, inputs: &[u64]) -> u64 {
        let mut out = [0u64];
        self.evaluate_words(inputs, &mut out, 1);
        out[0]
    }

    /// The PG levels programming this gate's input devices.
    pub fn pg_levels(&self) -> Vec<PgLevel> {
        self.controls.iter().map(|c| c.pg_level()).collect()
    }

    /// Rebuild a gate from PG levels (readback from a programmed array).
    pub fn from_pg_levels(levels: &[PgLevel]) -> GnorGate {
        GnorGate {
            controls: levels
                .iter()
                .map(|&l| InputPolarity::from_pg_level(l))
                .collect(),
        }
    }
}

/// Clock phase of a dynamic-logic gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `TPC` conducting, `TEV` high-resistive: output node charges high.
    Precharge,
    /// `TEV` conducting, `TPC` high-resistive: pull-down network may
    /// discharge the output.
    Evaluate,
}

/// Cycle-accurate dynamic GNOR cell: the Fig. 2 circuit with `TPC`/`TEV`.
///
/// The cell steps through [`Phase::Precharge`] / [`Phase::Evaluate`] under
/// explicit clocking; the output is only valid at the end of an evaluate
/// phase. `TPC` and `TEV` are modelled as ambipolar CNFETs of opposite
/// polarity driven by the same clock, exactly as in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicGnor {
    gate: GnorGate,
    tpc: AmbipolarCnfet,
    tev: AmbipolarCnfet,
    output_high: bool,
    phase: Phase,
}

impl DynamicGnor {
    /// Wrap a configured gate in the dynamic cell. `TPC` is p-type (conducts
    /// while the clock is low) and `TEV` n-type (conducts while the clock is
    /// high).
    pub fn new(gate: GnorGate) -> DynamicGnor {
        DynamicGnor {
            gate,
            tpc: AmbipolarCnfet::new(PgLevel::VMinus),
            tev: AmbipolarCnfet::new(PgLevel::VPlus),
            output_high: true,
            phase: Phase::Precharge,
        }
    }

    /// The configured gate.
    pub fn gate(&self) -> &GnorGate {
        &self.gate
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current output node level (only meaningful after an evaluate step).
    pub fn output(&self) -> bool {
        self.output_high
    }

    /// Apply one clock level. Clock low → precharge (output pulled high
    /// through `TPC`); clock high → evaluate (output discharges through the
    /// pull-down column iff any active `Cᵢ ⊕ xᵢ` is high **and** `TEV`
    /// conducts).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the gate width.
    pub fn clock(&mut self, clock_high: bool, inputs: &[bool]) {
        // TPC (p-type) conducts when the clock is low; TEV (n-type) when
        // high. Their opposite polarities guarantee they never fight.
        let tpc_on = self.tpc.conduction(clock_high).is_on();
        let tev_on = self.tev.conduction(clock_high).is_on();
        debug_assert!(tpc_on != tev_on, "TPC and TEV must alternate");
        if tpc_on {
            self.phase = Phase::Precharge;
            self.output_high = true;
        } else if tev_on {
            self.phase = Phase::Evaluate;
            // Discharge is one-way: once low, the node stays low until the
            // next precharge (dynamic-logic monotonicity).
            if !self.gate.evaluate(inputs) {
                self.output_high = false;
            }
        }
    }

    /// Run one full precharge+evaluate cycle and return the evaluated
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the gate width.
    pub fn cycle(&mut self, inputs: &[bool]) -> bool {
        self.clock(false, inputs);
        self.clock(true, inputs);
        self.output_high
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use InputPolarity::*;

    #[test]
    fn exor_from_two_gnor_inputs() {
        // Paper Section 3: NOR(C1 ⊕ A, C2 ⊕ B) with (C1,C2)=(0,1) gives
        // NOR(A, B̄) = Ā·B — one minterm of EXOR; with both control choices
        // the pair of gates covers EXOR. Check the single gate first.
        let gate = GnorGate::new(vec![Pass, Invert]);
        assert!(!gate.evaluate(&[true, true]));
        assert!(gate.evaluate(&[false, true])); // Ā·B
        assert!(!gate.evaluate(&[false, false]));
        assert!(!gate.evaluate(&[true, false]));
    }

    #[test]
    fn fig2_configuration() {
        // Y = NOR(A, B̄, D); C dropped.
        let gate = GnorGate::new(vec![Pass, Invert, Drop, Pass]);
        for bits in 0..16u8 {
            let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let want = !(x[0] || !x[1] || x[3]);
            assert_eq!(gate.evaluate(&x), want, "bits={bits:04b}");
        }
    }

    #[test]
    fn unconfigured_gate_is_constant_one() {
        let gate = GnorGate::unconfigured(3);
        for bits in 0..8u8 {
            let x: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert!(gate.evaluate(&x));
        }
        assert_eq!(gate.active_inputs(), 0);
    }

    #[test]
    fn pg_level_roundtrip() {
        let gate = GnorGate::new(vec![Pass, Invert, Drop]);
        let levels = gate.pg_levels();
        assert_eq!(
            levels,
            vec![PgLevel::VPlus, PgLevel::VMinus, PgLevel::VZero]
        );
        assert_eq!(GnorGate::from_pg_levels(&levels), gate);
    }

    #[test]
    fn dynamic_cell_precharges_high() {
        let mut cell = DynamicGnor::new(GnorGate::new(vec![Pass]));
        cell.clock(false, &[true]);
        assert_eq!(cell.phase(), Phase::Precharge);
        assert!(cell.output(), "precharge drives the node high");
    }

    #[test]
    fn dynamic_cell_evaluates_like_combinational() {
        let gate = GnorGate::new(vec![Pass, Invert, Drop, Pass]);
        let mut cell = DynamicGnor::new(gate.clone());
        for bits in 0..16u8 {
            let x: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(cell.cycle(&x), gate.evaluate(&x), "bits={bits:04b}");
        }
    }

    #[test]
    fn discharge_is_monotonic_within_evaluate() {
        // Once discharged, input wiggles cannot re-charge the node until the
        // next precharge.
        let mut cell = DynamicGnor::new(GnorGate::new(vec![Pass]));
        cell.clock(false, &[false]);
        cell.clock(true, &[true]); // discharges
        assert!(!cell.output());
        cell.clock(true, &[false]); // still evaluate; node must stay low
        assert!(!cell.output());
        cell.clock(false, &[false]); // precharge recovers
        assert!(cell.output());
    }

    #[test]
    fn single_input_inverter() {
        // A one-input GNOR with Pass control is an inverter; with Invert
        // control it is a buffer — the "internal signal inversion" of the
        // paper at its smallest.
        let inv = GnorGate::new(vec![Pass]);
        assert!(inv.evaluate(&[false]));
        assert!(!inv.evaluate(&[true]));
        let buf = GnorGate::new(vec![Invert]);
        assert!(buf.evaluate(&[true]));
        assert!(!buf.evaluate(&[false]));
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn arity_mismatch_panics() {
        GnorGate::new(vec![Pass, Pass]).evaluate(&[true]);
    }
}
