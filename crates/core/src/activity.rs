//! Switching-activity analysis of GNOR PLAs.
//!
//! The energy model in [`cnfet::energy`] takes per-plane discharge
//! probabilities; this module computes them **exactly** for uniformly
//! random inputs, using disjoint-cover minterm counting from `logic::ops`:
//!
//! * a product line discharges whenever its product is *false* (the NOR
//!   pulls down unless every active input keeps its device off), so its
//!   activity is `1 − |cube| / 2^n`;
//! * an output NOR line discharges whenever *any* of its products is true:
//!   activity `|∪ cubes_j| / 2^n`.

use crate::pla::GnorPla;
use cnfet::EnergyModel;
use logic::ops::minterm_count;
use logic::{Cover, Cube, Tri};

/// Exact per-line switching activities of a PLA under uniform inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityReport {
    /// Discharge probability of each product line.
    pub product_activity: Vec<f64>,
    /// Discharge probability of each output NOR line.
    pub output_activity: Vec<f64>,
}

impl ActivityReport {
    /// Mean product-line activity.
    pub fn mean_product_activity(&self) -> f64 {
        mean(&self.product_activity)
    }

    /// Mean output-line activity.
    pub fn mean_output_activity(&self) -> f64 {
        mean(&self.output_activity)
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Compute exact activities for the PLA realizing `cover`.
///
/// # Panics
///
/// Panics if the cover is empty or wider than 63 inputs.
pub fn analyze_activity(cover: &Cover) -> ActivityReport {
    assert!(!cover.is_empty(), "cover must have product terms");
    let n = cover.n_inputs();
    assert!(n < 64, "activity analysis supports up to 63 inputs");
    let space = (1u128 << n) as f64;

    let product_activity: Vec<f64> = cover
        .iter()
        .map(|c| {
            let size = (1u128 << (n - c.literal_count())) as f64;
            1.0 - size / space
        })
        .collect();

    let output_activity: Vec<f64> = (0..cover.n_outputs())
        .map(|j| {
            let slice = cover.output_slice(j);
            if slice.is_empty() {
                0.0
            } else {
                minterm_count(&slice) as f64 / space
            }
        })
        .collect();

    ActivityReport {
        product_activity,
        output_activity,
    }
}

/// Exact mean energy per cycle of the PLA realizing `cover`, combining the
/// activity analysis with the device energy model.
///
/// # Panics
///
/// Panics if the cover is empty or the PLA/cover dimensions disagree.
pub fn pla_energy_exact(pla: &GnorPla, cover: &Cover, model: &EnergyModel) -> f64 {
    let dims = pla.dimensions();
    assert_eq!(dims.inputs, cover.n_inputs(), "dimension mismatch");
    assert_eq!(dims.outputs, cover.n_outputs(), "dimension mismatch");
    assert_eq!(dims.products, cover.len(), "dimension mismatch");
    let act = analyze_activity(cover);
    let mut energy = 0.0;
    for &a in &act.product_activity {
        energy += a * model.line_switch_energy(dims.inputs, 1);
    }
    for &a in &act.output_activity {
        energy += a * model.line_switch_energy(dims.products, 1);
    }
    energy
}

/// A degenerate cube helper used by tests: the full cube over `n` inputs.
#[doc(hidden)]
pub fn full_cube(n: usize) -> Cube {
    let tris = vec![Tri::DontCare; n];
    Cube::from_tris(&tris, &[true])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn product_activity_is_one_minus_cube_probability() {
        // Cube with 2 literals over 3 inputs covers 1/4 of the space.
        let f = cover("11- 1", 3, 1);
        let act = analyze_activity(&f);
        assert!((act.product_activity[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn output_activity_is_function_probability() {
        // XOR is true on half the space.
        let f = cover("10 1\n01 1", 2, 1);
        let act = analyze_activity(&f);
        assert!((act.output_activity[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlapping_products_do_not_double_count() {
        // x0 + x1 is true on 3/4 of the space, not (1/2 + 1/2).
        let f = cover("1- 1\n-1 1", 2, 1);
        let act = analyze_activity(&f);
        assert!((act.output_activity[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn activity_matches_exhaustive_counting() {
        let f = cover("1-0 10\n011 01\n--1 11", 3, 2);
        let act = analyze_activity(&f);
        // Exhaustive check on both planes.
        for (r, c) in f.iter().enumerate() {
            let hits = (0..8u64).filter(|&m| c.covers_bits(m)).count() as f64;
            assert!(
                (act.product_activity[r] - (1.0 - hits / 8.0)).abs() < 1e-12,
                "row {r}"
            );
        }
        for j in 0..2 {
            let hits = (0..8u64).filter(|&m| f.eval_bits(m)[j]).count() as f64;
            assert!(
                (act.output_activity[j] - hits / 8.0).abs() < 1e-12,
                "output {j}"
            );
        }
    }

    #[test]
    fn constant_true_product_never_discharges() {
        let f = cover("-- 1", 2, 1);
        let act = analyze_activity(&f);
        assert_eq!(act.product_activity[0], 0.0);
        assert_eq!(act.output_activity[0], 1.0);
    }

    #[test]
    fn exact_energy_within_bounds() {
        let f = cover("10- 10\n-01 01\n11- 11", 3, 2);
        let pla = GnorPla::from_cover(&f);
        let model = EnergyModel::nominal();
        let exact = pla_energy_exact(&pla, &f, &model);
        let dims = pla.dimensions();
        // Exact energy is bounded by the all-lines-switch worst case.
        let worst = model.pla_cycle_energy(dims.inputs, dims.outputs, dims.products, 1.0, 1.0);
        assert!(exact > 0.0);
        assert!(exact <= worst);
    }

    #[test]
    fn literal_heavy_rows_switch_more() {
        // A 3-literal row discharges more often than a 1-literal row.
        let f = cover("111 1\n1-- 1", 3, 1);
        let act = analyze_activity(&f);
        assert!(act.product_activity[0] > act.product_activity[1]);
    }
}
