//! Classical NOR–NOR PLA baseline with true+complement input columns.
//!
//! This is the comparison architecture of Section 5: a conventional PLA
//! (Flash- or EEPROM-programmed) must route **both polarities of every
//! input** into the AND plane, doubling the input columns and the number of
//! externally routed signals. Functionally it computes exactly the same
//! covers as [`crate::GnorPla`]; structurally it pays `2i + o` columns.

use crate::area::PlaDimensions;
use crate::sim::{self, Simulator};
use logic::{Cover, Tri};

/// A classical two-level PLA with complemented input columns.
///
/// Column layout of the AND plane: `[x0, x̄0, x1, x̄1, …]` — the true and
/// complement rails the external inverters must supply.
///
/// # Example
///
/// ```
/// use ambipla_core::{ClassicalPla, Simulator};
/// use logic::Cover;
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let pla = ClassicalPla::from_cover(&xor);
/// assert_eq!(pla.simulate_bits(0b10), vec![true]);
/// assert_eq!(pla.dimensions().column_count_classical(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalPla {
    n_inputs: usize,
    n_outputs: usize,
    /// `products × 2·inputs` crosspoints of the AND (first NOR) plane.
    and_plane: Vec<Vec<bool>>,
    /// `outputs × products` crosspoints of the OR (second NOR) plane.
    or_plane: Vec<Vec<bool>>,
}

impl ClassicalPla {
    /// Map a cover onto the classical PLA.
    ///
    /// # Panics
    ///
    /// Panics if the cover is empty or has no outputs.
    pub fn from_cover(cover: &Cover) -> ClassicalPla {
        assert!(cover.n_outputs() > 0, "cover must have outputs");
        assert!(!cover.is_empty(), "cover must have product terms");
        let n_inputs = cover.n_inputs();
        let n_outputs = cover.n_outputs();
        let mut and_plane = Vec::with_capacity(cover.len());
        let mut or_plane = vec![vec![false; cover.len()]; n_outputs];
        for (r, cube) in cover.iter().enumerate() {
            let mut row = vec![false; 2 * n_inputs];
            for i in 0..n_inputs {
                match cube.input(i) {
                    // Product needs x_i ⇒ the NOR row connects the x̄_i rail.
                    Tri::One => row[2 * i + 1] = true,
                    // Product needs x̄_i ⇒ connect the x_i rail.
                    Tri::Zero => row[2 * i] = true,
                    Tri::DontCare => {}
                }
            }
            and_plane.push(row);
            for (j, or_row) in or_plane.iter_mut().enumerate() {
                or_row[r] = cube.has_output(j);
            }
        }
        ClassicalPla {
            n_inputs,
            n_outputs,
            and_plane,
            or_plane,
        }
    }

    /// PLA dimensions (same logical shape as the GNOR mapping).
    pub fn dimensions(&self) -> PlaDimensions {
        PlaDimensions {
            inputs: self.n_inputs,
            outputs: self.n_outputs,
            products: self.and_plane.len(),
        }
    }

    /// Signals that must be routed into the array from outside: both
    /// polarities of every input. The GNOR PLA halves this (Section 5's
    /// FPGA routing argument).
    pub fn routed_input_signals(&self) -> usize {
        2 * self.n_inputs
    }

    /// Number of programmed crosspoints over both planes.
    pub fn active_devices(&self) -> usize {
        let and: usize = self
            .and_plane
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum();
        let or: usize = self
            .or_plane
            .iter()
            .map(|r| r.iter().filter(|&&b| b).count())
            .sum();
        and + or
    }

    /// True if the PLA implements `cover` on every assignment (exhaustive
    /// up to [`logic::eval::EXHAUSTIVE_LIMIT`] inputs).
    pub fn implements(&self, cover: &Cover) -> bool {
        let n = self.n_inputs.min(logic::eval::EXHAUSTIVE_LIMIT);
        sim::equivalent_to_cover(self, cover, n)
    }
}

impl Simulator for ClassicalPla {
    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), self.n_inputs * words, "input arity mismatch");
        assert_eq!(
            out.len(),
            self.n_outputs * words,
            "output buffer size mismatch"
        );
        // The rails are virtual: AND-plane column 2i reads input word i
        // directly, column 2i+1 reads its complement.
        let mut products = vec![0u64; self.and_plane.len() * words];
        for (row, prow) in self.and_plane.iter().zip(products.chunks_exact_mut(words)) {
            for (i, rails) in row.chunks_exact(2).enumerate() {
                let x = &inputs[i * words..(i + 1) * words];
                if rails[0] {
                    for (p, &xv) in prow.iter_mut().zip(x) {
                        *p |= xv;
                    }
                }
                if rails[1] {
                    for (p, &xv) in prow.iter_mut().zip(x) {
                        *p |= !xv;
                    }
                }
            }
            for p in prow.iter_mut() {
                *p = !*p;
            }
        }
        out.fill(0);
        for (row, orow) in self.or_plane.iter().zip(out.chunks_exact_mut(words)) {
            for (r, &connected) in row.iter().enumerate() {
                if connected {
                    let p = &products[r * words..(r + 1) * words];
                    for (o, &pv) in orow.iter_mut().zip(p) {
                        *o |= pv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pla::GnorPla;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn xor_simulates() {
        let f = cover("10 1\n01 1", 2, 1);
        let pla = ClassicalPla::from_cover(&f);
        assert!(pla.implements(&f));
    }

    #[test]
    fn agrees_with_gnor_pla_on_full_adder() {
        let f = cover(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        );
        let classical = ClassicalPla::from_cover(&f);
        let gnor = GnorPla::from_cover(&f);
        for bits in 0..8u64 {
            assert_eq!(classical.simulate_bits(bits), gnor.simulate_bits(bits));
        }
    }

    #[test]
    fn routed_signals_double_the_inputs() {
        let f = cover("1--- 1", 4, 1);
        let pla = ClassicalPla::from_cover(&f);
        assert_eq!(pla.routed_input_signals(), 8);
    }

    #[test]
    fn device_count_equals_literals_plus_connections() {
        let f = cover("10- 11\n-11 01", 3, 2);
        let pla = ClassicalPla::from_cover(&f);
        // 2 + 2 literals in the AND plane; 3 connections in the OR plane.
        assert_eq!(pla.active_devices(), 7);
    }

    #[test]
    fn same_logical_dimensions_as_gnor() {
        let f = cover("10- 11\n-11 01", 3, 2);
        assert_eq!(
            ClassicalPla::from_cover(&f).dimensions(),
            GnorPla::from_cover(&f).dimensions()
        );
    }

    #[test]
    fn constant_true_row() {
        let f = cover("-- 1", 2, 1);
        let pla = ClassicalPla::from_cover(&f);
        for bits in 0..4u64 {
            assert!(pla.simulate_bits(bits)[0]);
        }
    }

    #[test]
    #[should_panic(expected = "product terms")]
    fn empty_cover_panics() {
        let _ = ClassicalPla::from_cover(&Cover::new(2, 1));
    }
}
