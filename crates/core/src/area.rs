//! The Table 1 area model.
//!
//! Section 5 prices a PLA as `basic cells × basic-cell area`:
//!
//! * a **classical** PLA plane (Flash or EEPROM programmable points) needs
//!   both polarities of every input — `2·i` input columns plus `o` output
//!   columns, each crossing `p` product rows;
//! * the **ambipolar CNFET GNOR** PLA generates polarities internally and
//!   needs a single column per input — `i + o` columns crossing `p` rows.
//!
//! Basic contacted cells (Table 1, first row): Flash 40 L², EEPROM 100 L²,
//! ambipolar CNFET 60 L² (from the Patil-style layout rules in
//! [`cnfet::tech`]).

use cnfet::tech::comparison;
use cnfet::CellGeometry;
use std::fmt;

/// Logical dimensions of a PLA: inputs, outputs, product terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlaDimensions {
    /// Number of input variables.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Number of product terms (array rows).
    pub products: usize,
}

impl PlaDimensions {
    /// Columns of a classical PLA: true + complement per input, one per
    /// output.
    pub fn column_count_classical(&self) -> usize {
        2 * self.inputs + self.outputs
    }

    /// Columns of a GNOR PLA: one per input, one per output.
    pub fn column_count_cnfet(&self) -> usize {
        self.inputs + self.outputs
    }

    /// Basic-cell count of a classical PLA.
    pub fn cells_classical(&self) -> usize {
        self.column_count_classical() * self.products
    }

    /// Basic-cell count of a GNOR PLA.
    pub fn cells_cnfet(&self) -> usize {
        self.column_count_cnfet() * self.products
    }
}

impl fmt::Display for PlaDimensions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}i/{}o/{}p", self.inputs, self.outputs, self.products)
    }
}

/// A PLA implementation technology of Table 1.
///
/// # Example
///
/// ```
/// use ambipla_core::{PlaDimensions, Technology};
///
/// let max46 = PlaDimensions { inputs: 9, outputs: 1, products: 46 };
/// assert_eq!(Technology::Flash.pla_area(max46), 34960.0);
/// assert_eq!(Technology::CnfetGnor.pla_area(max46), 27600.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// NOR-Flash programmable crosspoints, classical two-column inputs.
    Flash,
    /// EEPROM (FLOTOX) crosspoints, classical two-column inputs.
    Eeprom,
    /// Ambipolar-CNFET GNOR crosspoints, single-column inputs.
    CnfetGnor,
}

impl Technology {
    /// The three technologies in Table 1 column order.
    pub const ALL: [Technology; 3] = [Technology::Flash, Technology::Eeprom, Technology::CnfetGnor];

    /// The contacted basic-cell geometry.
    pub fn cell(&self) -> CellGeometry {
        match self {
            Technology::Flash => comparison::FLASH,
            Technology::Eeprom => comparison::EEPROM,
            Technology::CnfetGnor => comparison::CNFET,
        }
    }

    /// Basic-cell area in `L²` (Table 1, first row: 40 / 100 / 60).
    pub fn cell_area_l2(&self) -> u32 {
        self.cell().area_l2()
    }

    /// Whether this technology needs both input polarities as columns.
    pub fn needs_complement_columns(&self) -> bool {
        !matches!(self, Technology::CnfetGnor)
    }

    /// Basic-cell count for a PLA of the given dimensions.
    pub fn cells(&self, dims: PlaDimensions) -> usize {
        if self.needs_complement_columns() {
            dims.cells_classical()
        } else {
            dims.cells_cnfet()
        }
    }

    /// PLA area in `L²` — the quantity tabulated in Table 1.
    pub fn pla_area(&self, dims: PlaDimensions) -> f64 {
        self.cells(dims) as f64 * self.cell_area_l2() as f64
    }

    /// Human-readable name matching the paper's column headers.
    pub fn name(&self) -> &'static str {
        match self {
            Technology::Flash => "Flash",
            Technology::Eeprom => "EEPROM",
            Technology::CnfetGnor => "CNFET",
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Relative area saving of the CNFET PLA over `other` for `dims`:
/// `1 − area_CNFET / area_other`. Negative values mean overhead.
pub fn cnfet_saving_over(other: Technology, dims: PlaDimensions) -> f64 {
    1.0 - Technology::CnfetGnor.pla_area(dims) / other.pla_area(dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX46: PlaDimensions = PlaDimensions {
        inputs: 9,
        outputs: 1,
        products: 46,
    };
    const APLA: PlaDimensions = PlaDimensions {
        inputs: 10,
        outputs: 12,
        products: 25,
    };
    const T2: PlaDimensions = PlaDimensions {
        inputs: 17,
        outputs: 16,
        products: 52,
    };

    #[test]
    fn basic_cell_row_of_table1() {
        assert_eq!(Technology::Flash.cell_area_l2(), 40);
        assert_eq!(Technology::Eeprom.cell_area_l2(), 100);
        assert_eq!(Technology::CnfetGnor.cell_area_l2(), 60);
    }

    #[test]
    fn table1_max46_row() {
        assert_eq!(Technology::Flash.pla_area(MAX46), 34960.0);
        assert_eq!(Technology::Eeprom.pla_area(MAX46), 87400.0);
        assert_eq!(Technology::CnfetGnor.pla_area(MAX46), 27600.0);
    }

    #[test]
    fn table1_apla_row() {
        assert_eq!(Technology::Flash.pla_area(APLA), 32000.0);
        assert_eq!(Technology::Eeprom.pla_area(APLA), 80000.0);
        assert_eq!(Technology::CnfetGnor.pla_area(APLA), 33000.0);
    }

    #[test]
    fn table1_t2_row() {
        assert_eq!(Technology::Flash.pla_area(T2), 104000.0);
        assert_eq!(Technology::Eeprom.pla_area(T2), 260000.0);
        assert_eq!(Technology::CnfetGnor.pla_area(T2), 102960.0);
    }

    #[test]
    fn paper_saving_claims() {
        // "saving ~21%" over Flash on max46.
        let s = cnfet_saving_over(Technology::Flash, MAX46);
        assert!((s - 0.2105).abs() < 0.001, "max46 saving {s}");
        // "small area overhead (3%)" on apla.
        let o = cnfet_saving_over(Technology::Flash, APLA);
        assert!((o + 0.03125).abs() < 0.001, "apla overhead {o}");
        // "up to 68% less area" than EEPROM (max46).
        let e = cnfet_saving_over(Technology::Eeprom, MAX46);
        assert!((e - 0.684).abs() < 0.001, "eeprom saving {e}");
    }

    #[test]
    fn column_counts() {
        assert_eq!(MAX46.column_count_classical(), 19);
        assert_eq!(MAX46.column_count_cnfet(), 10);
        assert_eq!(T2.column_count_classical(), 50);
        assert_eq!(T2.column_count_cnfet(), 33);
    }

    #[test]
    fn cnfet_always_beats_eeprom() {
        // The paper: "the CNFET PLA is always more compact than EEPROM PLA".
        // cells ratio >= (i+o)/(2i+o) >= 1/2 and cell ratio = 60/100 < 2 —
        // check across a grid of shapes.
        for i in 1..30 {
            for o in 1..30 {
                let d = PlaDimensions {
                    inputs: i,
                    outputs: o,
                    products: 7,
                };
                assert!(
                    Technology::CnfetGnor.pla_area(d) < Technology::Eeprom.pla_area(d),
                    "shape {d}"
                );
            }
        }
    }

    #[test]
    fn flash_crossover_depends_on_shape() {
        // CNFET beats Flash iff 60(i+o) < 40(2i+o) ⇔ i > o.
        let wins = PlaDimensions {
            inputs: 10,
            outputs: 2,
            products: 5,
        };
        assert!(cnfet_saving_over(Technology::Flash, wins) > 0.0);
        let loses = PlaDimensions {
            inputs: 2,
            outputs: 10,
            products: 5,
        };
        assert!(cnfet_saving_over(Technology::Flash, loses) < 0.0);
        let tie = PlaDimensions {
            inputs: 5,
            outputs: 5,
            products: 5,
        };
        assert!(cnfet_saving_over(Technology::Flash, tie).abs() < 1e-12);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Technology::Flash.to_string(), "Flash");
        assert_eq!(Technology::Eeprom.to_string(), "EEPROM");
        assert_eq!(Technology::CnfetGnor.to_string(), "CNFET");
        assert_eq!(MAX46.to_string(), "9i/1o/46p");
    }
}
