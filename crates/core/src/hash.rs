//! Stable structural hashing of covers.
//!
//! The request-batching simulation service (`ambipla_serve`) caches block
//! evaluation results keyed on *(cover hash, input block)*, so it needs a
//! hash of a [`Cover`] that is
//!
//! * **stable across runs, platforms and compiler versions** — unlike
//!   `std::collections::hash_map::DefaultHasher`, whose output is
//!   deliberately randomized per process,
//! * **structural** — two covers hash equal iff their cube lists are
//!   identical (same cubes, same order, same arity).
//!
//! [`cover_hash`] is 64-bit FNV-1a over the arity and the canonical
//! PLA-style text of every cube. It is *not* a semantic hash: two
//! different cube lists implementing the same Boolean function hash
//! differently, which is exactly what a result cache wants (the cache key
//! must identify the registered object, not the function class).

use logic::Cover;

/// 64-bit FNV-1a offset basis (the initial hash state).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Absorb `bytes` into a 64-bit FNV-1a state, returning the new state.
/// Start from [`FNV_OFFSET`]; chain calls to hash composite keys. Shared
/// by [`cover_hash`] and the `ambipla_serve` cache's shard selector so
/// the workspace has exactly one copy of the FNV constants.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Stable 64-bit FNV-1a hash of a cover's structure (arity + ordered cube
/// list, in canonical `.pla` cube text).
///
/// ```
/// use ambipla_core::cover_hash;
/// use logic::Cover;
///
/// let a = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let b = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let c = Cover::parse("01 1\n10 1", 2, 1).unwrap();
/// assert_eq!(cover_hash(&a), cover_hash(&b));
/// assert_ne!(cover_hash(&a), cover_hash(&c)); // order matters
/// ```
pub fn cover_hash(cover: &Cover) -> u64 {
    let mut hash = FNV_OFFSET;
    hash = fnv1a(hash, &(cover.n_inputs() as u64).to_le_bytes());
    hash = fnv1a(hash, &(cover.n_outputs() as u64).to_le_bytes());
    for cube in cover {
        hash = fnv1a(hash, cube.to_string().as_bytes());
        // Separator byte: `.pla` cube text never contains '\n'.
        hash = fnv1a(hash, b"\n");
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_across_calls() {
        let f = Cover::parse("110 01\n101 01", 3, 2).expect("valid cover");
        assert_eq!(cover_hash(&f), cover_hash(&f.clone()));
    }

    #[test]
    fn hash_is_a_fixed_golden_value() {
        // Guards the "stable across runs / platforms" contract: if the
        // hashing scheme ever changes, persisted cache keys would silently
        // stop matching — fail loudly here instead.
        let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        assert_eq!(cover_hash(&f), 0x6d20_aafc_aef3_dc98);
    }

    #[test]
    fn arity_enters_the_hash() {
        let narrow = Cover::new(2, 1);
        let wide = Cover::new(3, 1);
        let tall = Cover::new(2, 2);
        assert_ne!(cover_hash(&narrow), cover_hash(&wide));
        assert_ne!(cover_hash(&narrow), cover_hash(&tall));
    }

    #[test]
    fn cube_content_and_order_enter_the_hash() {
        let a = Cover::parse("10 1\n0- 1", 2, 1).expect("valid cover");
        let b = Cover::parse("10 1\n0- 1\n11 1", 2, 1).expect("valid cover");
        let c = Cover::parse("0- 1\n10 1", 2, 1).expect("valid cover");
        assert_ne!(cover_hash(&a), cover_hash(&b));
        assert_ne!(cover_hash(&a), cover_hash(&c));
    }
}
