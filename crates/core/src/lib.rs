//! GNOR gates, GNOR-PLA / Whirlpool-PLA architecture, crossbar interconnect
//! and the Table 1 area model — the core contribution of *Ben Jamaa et al.,
//! "Programmable Logic Circuits Based on Ambipolar CNFET", DAC 2008*.
//!
//! The central object is the **generalized NOR (GNOR)** gate: a dynamic-logic
//! column of ambipolar CNFETs in which every input `x_i` carries a polarity
//! control `C_i` programmed into the device's polarity gate:
//!
//! * `C_i = 0` (`V+`, n-type) — the input participates **as is**,
//! * `C_i = 1` (`V−`, p-type) — the input participates **inverted**,
//! * `C_i = V0` — the input is **dropped** from the function.
//!
//! The gate computes `Y = NOR_i (C_i ⊕ x_i)` over the participating inputs
//! (Section 3, Fig. 2). Because inversion happens *inside* the array, a PLA
//! built from two cascaded GNOR planes needs **one column per input**
//! instead of the classical true+complement pair — the source of every
//! benefit the paper evaluates.
//!
//! Modules:
//!
//! * [`gnor`] — polarity controls, combinational GNOR evaluation, and the
//!   precharge/evaluate dynamic-logic cell (TPC/TEV) of Fig. 2,
//! * [`plane`] — a GNOR plane: an array of GNOR gates over shared columns,
//! * [`pla`] — the two-plane GNOR PLA of Fig. 3/4: cover mapping, functional
//!   simulation, and programming through the charge matrix,
//! * [`baseline`] — the classical two-column-per-input PLA used as the
//!   comparison point,
//! * [`sim`] — the object-safe [`Simulator`] trait: the width-generic
//!   bit-parallel evaluation API (`eval_words`, up to `words × 64` lanes
//!   per call into caller-reused buffers) every PLA flavor, fault model
//!   and FPGA mapping implements, plus the `&dyn Simulator` verification
//!   sweeps,
//! * [`table`] — materialized [`TruthTable`]s: small simulators swept
//!   exhaustively once into packed words, then served (and compared) by
//!   O(1) indexed load — the backing store of `ambipla_serve`'s
//!   materialized tier,
//! * [`hash`] — stable structural cover hashing (cache keys for the
//!   `ambipla_serve` result cache),
//! * [`pool`] — the deterministic [`std::thread::scope`] worker pool behind
//!   parallel Monte-Carlo and multi-cover sweeps,
//! * [`area`] — the Table 1 area model (Flash / EEPROM / ambipolar CNFET),
//! * [`crossbar`] — the pass-transistor interconnect array of Section 4,
//! * [`timing`] — dynamic-logic cycle-time estimation on top of the device
//!   RC model,
//! * [`wpla`] — the four-plane Whirlpool PLA cascade enabled by internal
//!   polarity generation.

pub mod activity;
pub mod area;
pub mod baseline;
pub mod cascade;
pub mod config;
pub mod crossbar;
pub mod dynamic;
pub mod fsm;
pub mod gnor;
pub mod hash;
pub mod layout;
pub mod pla;
pub mod plane;
pub mod pool;
pub mod sim;
pub mod table;
pub mod timing;
pub mod wpla;

pub use activity::{analyze_activity, pla_energy_exact, ActivityReport};
pub use area::{PlaDimensions, Technology};
pub use baseline::ClassicalPla;
pub use cascade::{NetworkError, PlaNetwork};
pub use config::{from_bitstream, to_bitstream, BitstreamError};
pub use crossbar::{Crossbar, CrosspointState};
pub use dynamic::DynamicPla;
pub use fsm::{FsmError, PlaFsm};
pub use gnor::{DynamicGnor, GnorGate, InputPolarity, Phase};
pub use hash::cover_hash;
pub use layout::Floorplan;
pub use pla::{GnorPla, MapError};
pub use plane::GnorPlane;
pub use pool::WorkerPool;
pub use sim::{
    pack_vectors, pack_vectors_words, unpack_lane, unpack_lane_words, EpochOracle, SharedSimulator,
    Simulator, LANES,
};
pub use table::{table_bytes, TruthTable};
pub use timing::{PlaTiming, TimingModel};
pub use wpla::Wpla;
