//! Deterministic scoped worker pool.
//!
//! The build environment has no rayon (no crates.io access), so parallel
//! sections in this workspace run on a tiny [`std::thread::scope`]-based
//! pool instead. The design constraint — inherited by every caller — is
//! **bit-for-bit determinism**: `pool.map(items, f)` with any thread count
//! must return exactly what the sequential `items.iter().map(f)` loop
//! returns, in the same order.
//!
//! That holds by construction: items are split into contiguous index
//! ranges, each worker computes its range independently (`f` receives the
//! *global* index, so seed-stream splitting is just "derive the seed from
//! the index"), and results are reassembled in range order. Nothing about
//! scheduling can reorder or perturb the output; threads only change
//! wall-clock time.
//!
//! Used by `fault::yield_analysis` to shard Monte-Carlo trials and by
//! `ambipla_serve` to shard batch evaluation across covers.

use std::num::NonZeroUsize;

/// A fixed-width fork-join worker pool over [`std::thread::scope`].
///
/// The pool holds no threads while idle — each [`map`](WorkerPool::map)
/// call spawns, joins and tears down its scoped workers, which keeps the
/// type trivially `Send + Sync` and free of shutdown protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool running `threads` workers per parallel section.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> WorkerPool {
        assert!(threads > 0, "pool needs at least one thread");
        WorkerPool { threads }
    }

    /// A pool sized to the machine's available parallelism (1 if unknown).
    pub fn available() -> WorkerPool {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Worker count per parallel section.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, in parallel, returning results in item
    /// order. `f` gets the item's global index alongside the item, so
    /// index-derived seeding is identical no matter how items are sharded.
    ///
    /// Equivalent to `items.iter().enumerate().map(|(i, t)| f(i, t))` —
    /// including on panic: a panicking worker propagates the panic.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_range(items.len(), |i| f(i, &items[i]))
    }

    /// [`map`](WorkerPool::map) over the index range `0..n` — the single
    /// copy of the shard / scoped-spawn / reassemble machinery.
    pub fn map_range<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(self.threads);
        let mut shards: Vec<Vec<U>> = Vec::with_capacity(self.threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|lo| {
                    let f = &f;
                    let hi = (lo + chunk).min(n);
                    s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(shard) => shards.push(shard),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        let mut out = Vec::with_capacity(n);
        out.extend(shards.into_iter().flatten());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 7, 16, 300] {
            let pool = WorkerPool::new(threads);
            assert_eq!(
                pool.map(&items, |_, &x| x * x + 1),
                expected,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_hands_out_global_indices() {
        let items = vec![(); 100];
        for threads in [1, 3, 8] {
            let idx = WorkerPool::new(threads).map(&items, |i, ()| i);
            assert_eq!(idx, (0..100).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn map_range_matches_sequential_loop() {
        // Index-seeded "Monte-Carlo" shape: result depends only on the
        // global index, so any sharding must be bit-identical.
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 3;
        let expected: Vec<u64> = (0..1000).map(f).collect();
        for threads in [1, 2, 5, 13] {
            assert_eq!(WorkerPool::new(threads).map_range(1000, f), expected);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map(&[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(pool.map_range(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(&[9u8], |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(4).map_range(64, |i| {
                assert!(i != 40, "injected failure");
                i
            })
        });
        assert!(result.is_err());
    }
}
