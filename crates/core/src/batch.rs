//! 64-lane bit-parallel batch simulation.
//!
//! Every functional simulator in this workspace originally evaluated one
//! input vector at a time over `Vec<bool>` signals. The hot paths — yield
//! Monte-Carlo, phase-optimization verification, exhaustive equivalence
//! sweeps — all evaluate the *same* array on *many* vectors, which makes
//! them ideal for word-level bit-slicing: pack one bit per **lane** (input
//! vector) into a `u64`, keep one word per signal column, and every
//! AND/OR/NOT over words advances all 64 lanes at once.
//!
//! The packing convention is *column-major*: `inputs[i]` holds input `i` of
//! all 64 lanes; bit `L` of that word is input `i` of lane `L`. The same
//! convention applies to outputs. [`pack_vectors`] / [`unpack_lane`]
//! convert between this layout and the packed-assignment (`u64` per
//! vector) layout the scalar `simulate_bits` APIs use.
//!
//! [`BatchSim`] is implemented by all four PLA architectures
//! ([`GnorPla`](crate::GnorPla), [`ClassicalPla`](crate::ClassicalPla),
//! [`DynamicPla`](crate::DynamicPla), [`Wpla`](crate::Wpla)) and by the
//! fault simulator's defective array; [`equivalent_to_cover`] and
//! [`agrees_on`] are the batch-powered verification loops behind every
//! `implements` check.

use logic::Cover;

pub use logic::eval::{exhaustive_block, lane_mask, pack_vectors, unpack_lane, LANES};

/// Bit-parallel functional simulation over 64 packed lanes.
pub trait BatchSim {
    /// Number of primary inputs (words expected by
    /// [`simulate_batch`](BatchSim::simulate_batch)).
    fn batch_inputs(&self) -> usize;

    /// Number of primary outputs (words returned).
    fn batch_outputs(&self) -> usize;

    /// Evaluate 64 input vectors at once.
    ///
    /// `inputs[i]` carries input `i` of every lane (bit `L` = lane `L`);
    /// the returned words carry the outputs in the same lane order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.batch_inputs()`.
    fn simulate_batch(&self, inputs: &[u64]) -> Vec<u64>;

    /// Evaluate up to 64 packed assignments (the `simulate_bits` layout:
    /// bit `i` of `vectors[L]` is input `i`), returning one output vector
    /// per assignment.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] vectors are supplied.
    fn simulate_block(&self, vectors: &[u64]) -> Vec<Vec<bool>> {
        assert!(vectors.len() <= LANES, "at most {LANES} lanes per block");
        let words = self.simulate_batch(&pack_vectors(vectors, self.batch_inputs()));
        (0..vectors.len())
            .map(|lane| unpack_lane(&words, lane))
            .collect()
    }
}

/// Exhaustively compare `sim` against `cover` over the low `n_checked`
/// inputs (any higher input columns are held at 0), 64 assignments per
/// step. Equivalent to — and replaces — the scalar loop
/// `(0..1 << n_checked).all(|bits| sim.simulate_bits(bits) == cover.eval_bits(bits))`.
///
/// # Panics
///
/// Panics if `n_checked` exceeds the simulator's input count or 63.
pub fn equivalent_to_cover<S: BatchSim + ?Sized>(sim: &S, cover: &Cover, n_checked: usize) -> bool {
    let n = sim.batch_inputs();
    assert!(
        n_checked <= n,
        "cannot check more inputs than the array has"
    );
    assert!(n_checked < 64, "exhaustive sweeps need n_checked < 64");
    if sim.batch_outputs() != cover.n_outputs() {
        // Mismatched output arity can never be equivalent (mirrors the
        // scalar Vec comparison this sweep replaced).
        return false;
    }
    let total = 1u64 << n_checked;
    if total < LANES as u64 {
        let inputs = exhaustive_block(0, n);
        let mask = lane_mask(total as usize);
        return words_agree(
            &sim.simulate_batch(&inputs),
            &eval_cover_resized(cover, &inputs),
            mask,
        );
    }
    (0..total).step_by(LANES).all(|base| {
        let inputs = exhaustive_block(base, n);
        words_agree(
            &sim.simulate_batch(&inputs),
            &eval_cover_resized(cover, &inputs),
            !0,
        )
    })
}

/// Compare `sim` against `cover` on an explicit list of packed
/// assignments, 64 per step. Used by the sampled (wide-function) paths.
pub fn agrees_on<S: BatchSim + ?Sized>(sim: &S, cover: &Cover, patterns: &[u64]) -> bool {
    if sim.batch_outputs() != cover.n_outputs() {
        return false;
    }
    patterns.chunks(LANES).all(|chunk| {
        let inputs = pack_vectors(chunk, sim.batch_inputs());
        let mask = lane_mask(chunk.len());
        words_agree(
            &sim.simulate_batch(&inputs),
            &eval_cover_resized(cover, &inputs),
            mask,
        )
    })
}

/// Evaluate `cover` on lane words produced for a (possibly different-arity)
/// simulator: excess simulator columns are dropped, missing ones read as 0
/// — matching what `Cover::eval_bits` did with out-of-range bits held low.
fn eval_cover_resized(cover: &Cover, inputs: &[u64]) -> Vec<u64> {
    if cover.n_inputs() == inputs.len() {
        cover.eval_batch(inputs)
    } else {
        let mut resized = inputs[..inputs.len().min(cover.n_inputs())].to_vec();
        resized.resize(cover.n_inputs(), 0);
        cover.eval_batch(&resized)
    }
}

fn words_agree(a: &[u64], b: &[u64], mask: u64) -> bool {
    assert_eq!(a.len(), b.len(), "output arity mismatch");
    a.iter().zip(b).all(|(&x, &y)| (x ^ y) & mask == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pla::GnorPla;

    fn adder() -> (Cover, GnorPla) {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        (f, pla)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let vectors: Vec<u64> = (0..64).map(|v| v * 0x9e37 % 1024).collect();
        let words = pack_vectors(&vectors, 10);
        for (lane, &v) in vectors.iter().enumerate() {
            let bools = unpack_lane(&words, lane);
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(b, v >> i & 1 == 1, "lane {lane} input {i}");
            }
        }
    }

    #[test]
    fn exhaustive_block_enumerates_consecutive_assignments() {
        for base in [0u64, 64, 192] {
            let words = exhaustive_block(base, 9);
            for lane in 0..64 {
                let assignment = base + lane as u64;
                for (i, &w) in words.iter().enumerate() {
                    assert_eq!(
                        w >> lane & 1,
                        assignment >> i & 1,
                        "base {base} lane {lane} input {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn simulate_block_matches_scalar() {
        let (_, pla) = adder();
        let vectors: Vec<u64> = (0..8).collect();
        let block = crate::batch::BatchSim::simulate_block(&pla, &vectors);
        for (lane, &bits) in vectors.iter().enumerate() {
            assert_eq!(block[lane], pla.simulate_bits(bits), "bits {bits:03b}");
        }
    }

    #[test]
    fn equivalent_to_cover_agrees_with_scalar_loop() {
        let (f, pla) = adder();
        assert!(equivalent_to_cover(&pla, &f, 3));
        // Break one driver polarity: the sweep must notice.
        let broken = GnorPla::from_parts(
            pla.input_plane().clone(),
            pla.output_plane().clone(),
            vec![true, false],
        );
        assert!(!equivalent_to_cover(&broken, &f, 3));
    }

    #[test]
    fn sub_word_spaces_mask_unused_lanes() {
        // 2 inputs: only 4 of the 64 lanes are meaningful.
        let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        assert!(equivalent_to_cover(&pla, &f, 2));
    }

    #[test]
    fn mismatched_output_arity_is_never_equivalent() {
        // The scalar Vec comparison this sweep replaced returned false for
        // a cover with a different output count; the batch sweep must too
        // (in release builds as well, not via a debug assertion).
        let (_, pla) = adder(); // 3 inputs, 2 outputs
        let narrow = Cover::parse("110 1\n011 1", 3, 1).expect("valid cover");
        assert!(!equivalent_to_cover(&pla, &narrow, 3));
        assert!(!agrees_on(&pla, &narrow, &[0, 1, 2]));
    }

    #[test]
    fn agrees_on_partial_chunks() {
        let (f, pla) = adder();
        let pats: Vec<u64> = (0..100).map(|x| x % 8).collect(); // 64 + 36 tail
        assert!(agrees_on(&pla, &f, &pats));
    }
}
