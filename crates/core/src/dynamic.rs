//! Cycle-accurate two-phase simulation of the GNOR PLA.
//!
//! The functional simulator in [`crate::pla`] computes the settled result;
//! this module steps the actual **domino clocking** of the two-plane
//! cascade: both planes precharge in parallel while the clock is low, then
//! plane 1 evaluates, and plane 2 evaluates on plane 1's settled product
//! lines — one [`DynamicGnor`] cell per row, exactly the Fig. 2 circuit
//! replicated across the array. Used to demonstrate (and test) that the
//! dynamic discipline reproduces the functional semantics, including the
//! monotonic-discharge property that makes the cascade race-free.

use crate::gnor::{DynamicGnor, Phase};
use crate::pla::GnorPla;
use crate::sim::Simulator;

/// A GNOR PLA instantiated as dynamic cells with explicit clocking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicPla {
    plane1: Vec<DynamicGnor>,
    plane2: Vec<DynamicGnor>,
    inverting_outputs: Vec<bool>,
    phase: Phase,
}

impl DynamicPla {
    /// Instantiate the dynamic cells of a configured PLA.
    pub fn new(pla: &GnorPla) -> DynamicPla {
        DynamicPla {
            plane1: pla
                .input_plane()
                .gates()
                .map(|g| DynamicGnor::new(g.clone()))
                .collect(),
            plane2: pla
                .output_plane()
                .gates()
                .map(|g| DynamicGnor::new(g.clone()))
                .collect(),
            inverting_outputs: pla.inverting_outputs().to_vec(),
            phase: Phase::Precharge,
        }
    }

    /// Current clock phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Product-line levels as of the last step.
    pub fn product_lines(&self) -> Vec<bool> {
        self.plane1.iter().map(DynamicGnor::output).collect()
    }

    /// Output levels (after the driver polarities) as of the last step.
    pub fn outputs(&self) -> Vec<bool> {
        self.plane2
            .iter()
            .zip(&self.inverting_outputs)
            .map(|(c, &inv)| if inv { !c.output() } else { c.output() })
            .collect()
    }

    /// Drive the precharge phase (clock low on both planes).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input-plane width.
    pub fn precharge(&mut self, inputs: &[bool]) {
        for cell in &mut self.plane1 {
            cell.clock(false, inputs);
        }
        let products = self.product_lines();
        for cell in &mut self.plane2 {
            cell.clock(false, &products);
        }
        self.phase = Phase::Precharge;
    }

    /// Drive the evaluate phase: plane 1 first, then plane 2 on the settled
    /// product lines (domino ordering).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input-plane width.
    pub fn evaluate(&mut self, inputs: &[bool]) {
        for cell in &mut self.plane1 {
            cell.clock(true, inputs);
        }
        let products = self.product_lines();
        for cell in &mut self.plane2 {
            cell.clock(true, &products);
        }
        self.phase = Phase::Evaluate;
    }

    /// One full cycle; returns the evaluated outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the input-plane width.
    pub fn cycle(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.precharge(inputs);
        self.evaluate(inputs);
        self.outputs()
    }

    /// Run a packed assignment through one cycle.
    pub fn cycle_bits(&mut self, bits: u64) -> Vec<bool> {
        let n = self.plane1.first().map_or(0, |c| c.gate().width());
        let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        self.cycle(&inputs)
    }
}

/// 64-lane batch evaluation of the **settled full-cycle result**: every
/// lane precharges (all lines high) and then evaluates through the domino
/// ordering, exactly what [`DynamicPla::cycle`] computes per vector.
/// Because a full cycle starts from the precharged state, the result is a
/// pure function of the inputs, so batching needs no per-lane cell state
/// and leaves the scalar simulator's phase tracking untouched.
impl Simulator for DynamicPla {
    fn n_inputs(&self) -> usize {
        self.plane1.first().map_or(0, |c| c.gate().width())
    }

    fn n_outputs(&self) -> usize {
        self.plane2.len()
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert_eq!(
            out.len(),
            self.plane2.len() * words,
            "output buffer size mismatch"
        );
        // After precharge, a line discharges iff its pull-down column
        // conducts — the combinational GNOR of the configured gate.
        let mut products = vec![0u64; self.plane1.len() * words];
        for (c, prow) in self.plane1.iter().zip(products.chunks_exact_mut(words)) {
            c.gate().evaluate_words(inputs, prow, words);
        }
        for ((c, &inv), orow) in self
            .plane2
            .iter()
            .zip(&self.inverting_outputs)
            .zip(out.chunks_exact_mut(words))
        {
            c.gate().evaluate_words(&products, orow, words);
            if inv {
                for w in orow {
                    *w = !*w;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::Cover;

    fn adder_pla() -> (Cover, GnorPla) {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        (f, pla)
    }

    #[test]
    fn dynamic_matches_functional_simulation() {
        let (_, pla) = adder_pla();
        let mut dynamic = DynamicPla::new(&pla);
        for bits in 0..8u64 {
            assert_eq!(
                dynamic.cycle_bits(bits),
                pla.simulate_bits(bits),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn precharge_lifts_all_lines() {
        let (_, pla) = adder_pla();
        let mut dynamic = DynamicPla::new(&pla);
        dynamic.cycle_bits(0b111); // discharge something first
        dynamic.precharge(&[false, false, false]);
        assert!(dynamic.product_lines().iter().all(|&p| p));
        assert_eq!(dynamic.phase(), Phase::Precharge);
    }

    #[test]
    fn back_to_back_cycles_are_independent() {
        // Dynamic logic must not leak state between cycles.
        let (f, pla) = adder_pla();
        let mut dynamic = DynamicPla::new(&pla);
        let sequence = [0b111u64, 0b000, 0b101, 0b101, 0b010, 0b111];
        for &bits in &sequence {
            assert_eq!(
                dynamic.cycle_bits(bits),
                f.eval_bits(bits),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn evaluate_without_precharge_is_monotone() {
        // Skipping precharge can only keep lines low (the domino hazard),
        // never raise them: outputs may be wrong but never glitch high on
        // the NOR lines.
        let (_, pla) = adder_pla();
        let mut dynamic = DynamicPla::new(&pla);
        dynamic.cycle_bits(0b011); // leaves some lines discharged
        let before = dynamic.product_lines();
        dynamic.evaluate(&[false, false, false]); // no precharge in between
        let after = dynamic.product_lines();
        for (b, a) in before.iter().zip(&after) {
            assert!(*a <= *b, "a discharged line came back without precharge");
        }
    }

    #[test]
    fn phase_tracking() {
        let (_, pla) = adder_pla();
        let mut dynamic = DynamicPla::new(&pla);
        dynamic.precharge(&[false; 3]);
        assert_eq!(dynamic.phase(), Phase::Precharge);
        dynamic.evaluate(&[false; 3]);
        assert_eq!(dynamic.phase(), Phase::Evaluate);
    }
}
