//! Pass-transistor interconnect array (Section 4).
//!
//! Every crosspoint of the array connects a horizontal and a vertical wire
//! through an ambipolar CNFET used as a pass transistor. All control gates
//! are tied to the same high level, so conduction is decided purely by the
//! programmed PG charge:
//!
//! * PG = `V+` → n-type, CG high → **conducting**: the wires are connected;
//! * PG = `V0` → always off → **disconnected**;
//! * PG = `V−` → p-type, CG high → also off (unused by the paper's
//!   protocol, but decoded as disconnected here for robustness).
//!
//! Interleaving these arrays with GNOR PLAs (Fig. 3) yields cascades of NOR
//! planes that realize any logic function.

use cnfet::{AmbipolarCnfet, PgLevel, ProgrammingMatrix};
use std::error::Error;
use std::fmt;

/// Programmed state of one crosspoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CrosspointState {
    /// PG = `V+`: pass transistor conducting, wires connected.
    Connected,
    /// PG = `V0` (or `V−`): pass transistor off, wires isolated.
    #[default]
    Disconnected,
}

impl CrosspointState {
    /// The PG level programming this state.
    pub fn pg_level(self) -> PgLevel {
        match self {
            CrosspointState::Connected => PgLevel::VPlus,
            CrosspointState::Disconnected => PgLevel::VZero,
        }
    }

    /// Decode a PG level under the CG-high convention: only an n-type
    /// device conducts.
    pub fn from_pg_level(level: PgLevel) -> CrosspointState {
        let device = AmbipolarCnfet::new(level);
        if device.conduction(true).is_on() {
            CrosspointState::Connected
        } else {
            CrosspointState::Disconnected
        }
    }
}

/// Error routing signals through a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Two or more horizontal wires drive the same vertical wire — an
    /// electrical short through the pass transistors.
    MultipleDrivers {
        /// The contested vertical wire.
        vertical: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::MultipleDrivers { vertical } => {
                write!(f, "vertical wire {vertical} has multiple drivers")
            }
        }
    }
}

impl Error for RouteError {}

/// A programmable `horizontals × verticals` pass-transistor crossbar.
///
/// # Example
///
/// ```
/// use ambipla_core::Crossbar;
///
/// let mut xbar = Crossbar::new(2, 3);
/// xbar.connect(0, 2);
/// xbar.connect(1, 0);
/// let out = xbar.route(&[true, false])?;
/// assert_eq!(out, vec![Some(false), None, Some(true)]);
/// # Ok::<(), ambipla_core::crossbar::RouteError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    horizontals: usize,
    verticals: usize,
    states: Vec<CrosspointState>,
}

impl Crossbar {
    /// A fully disconnected crossbar.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(horizontals: usize, verticals: usize) -> Crossbar {
        assert!(
            horizontals > 0 && verticals > 0,
            "crossbar dimensions must be non-zero"
        );
        Crossbar {
            horizontals,
            verticals,
            states: vec![CrosspointState::Disconnected; horizontals * verticals],
        }
    }

    /// Number of horizontal wires.
    pub fn horizontals(&self) -> usize {
        self.horizontals
    }

    /// Number of vertical wires.
    pub fn verticals(&self) -> usize {
        self.verticals
    }

    /// The state of crosspoint `(h, v)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn state(&self, h: usize, v: usize) -> CrosspointState {
        self.states[self.index(h, v)]
    }

    /// Connect horizontal `h` to vertical `v`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn connect(&mut self, h: usize, v: usize) {
        let i = self.index(h, v);
        self.states[i] = CrosspointState::Connected;
    }

    /// Disconnect crosspoint `(h, v)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn disconnect(&mut self, h: usize, v: usize) {
        let i = self.index(h, v);
        self.states[i] = CrosspointState::Disconnected;
    }

    /// Number of conducting crosspoints.
    pub fn connection_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, CrosspointState::Connected))
            .count()
    }

    /// The horizontal wire driving each vertical wire, or `None` for a
    /// floating vertical — the electrical structure both routing flavors
    /// ([`route`](Crossbar::route) / [`route_block`](Crossbar::route_block))
    /// copy values along.
    ///
    /// # Errors
    ///
    /// [`RouteError::MultipleDrivers`] if a vertical wire is connected to
    /// more than one horizontal.
    pub fn driver_map(&self) -> Result<Vec<Option<usize>>, RouteError> {
        let mut drivers = vec![None; self.verticals];
        for (v, slot) in drivers.iter_mut().enumerate() {
            for h in 0..self.horizontals {
                if matches!(self.state(h, v), CrosspointState::Connected) {
                    if slot.is_some() {
                        return Err(RouteError::MultipleDrivers { vertical: v });
                    }
                    *slot = Some(h);
                }
            }
        }
        Ok(drivers)
    }

    /// Drive the horizontal wires with `values` and read the vertical
    /// wires. Unconnected verticals float (`None`).
    ///
    /// # Errors
    ///
    /// [`RouteError::MultipleDrivers`] if a vertical wire is connected to
    /// more than one horizontal.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != horizontals()`.
    pub fn route(&self, values: &[bool]) -> Result<Vec<Option<bool>>, RouteError> {
        assert_eq!(values.len(), self.horizontals, "driver arity mismatch");
        Ok(self
            .driver_map()?
            .into_iter()
            .map(|d| d.map(|h| values[h]))
            .collect())
    }

    /// [`route`](Crossbar::route) for 64-lane signal words: each vertical
    /// wire carries its driver's whole lane word (pass transistors are
    /// polarity-agnostic wires, so routing is lane-independent).
    ///
    /// # Errors
    ///
    /// [`RouteError::MultipleDrivers`] if a vertical wire is connected to
    /// more than one horizontal.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() != horizontals()`.
    pub fn route_block(&self, words: &[u64]) -> Result<Vec<Option<u64>>, RouteError> {
        assert_eq!(words.len(), self.horizontals, "driver arity mismatch");
        Ok(self
            .driver_map()?
            .into_iter()
            .map(|d| d.map(|h| words[h]))
            .collect())
    }

    /// Width-generic [`route_block`](Crossbar::route_block): each
    /// horizontal wire carries `words` signal-major lane words
    /// (`signals[h·words + w]`), and each vertical wire receives its
    /// driver's whole word group into `out[v·words .. (v+1)·words]`.
    /// Floating verticals are zero-filled (callers that care about
    /// floats — like [`crate::PlaNetwork`]'s builder — detect them once
    /// via [`driver_map`](Crossbar::driver_map) instead of per block).
    ///
    /// # Errors
    ///
    /// [`RouteError::MultipleDrivers`] if a vertical wire is connected to
    /// more than one horizontal.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`, `signals.len() != horizontals() × words`,
    /// or `out.len() != verticals() × words`.
    pub fn route_words(
        &self,
        signals: &[u64],
        out: &mut [u64],
        words: usize,
    ) -> Result<(), RouteError> {
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(
            signals.len(),
            self.horizontals * words,
            "driver arity mismatch"
        );
        assert_eq!(
            out.len(),
            self.verticals * words,
            "output buffer size mismatch"
        );
        for (d, orow) in self
            .driver_map()?
            .into_iter()
            .zip(out.chunks_exact_mut(words))
        {
            match d {
                Some(h) => orow.copy_from_slice(&signals[h * words..(h + 1) * words]),
                None => orow.fill(0),
            }
        }
        Ok(())
    }

    /// The PG-level map (horizontal-major) the configuration protocol
    /// writes.
    pub fn pg_map(&self) -> Vec<Vec<PgLevel>> {
        (0..self.horizontals)
            .map(|h| {
                (0..self.verticals)
                    .map(|v| self.state(h, v).pg_level())
                    .collect()
            })
            .collect()
    }

    /// Rebuild a crossbar from a PG map (array readback).
    ///
    /// # Panics
    ///
    /// Panics if the map is empty or ragged.
    pub fn from_pg_map(map: &[Vec<PgLevel>]) -> Crossbar {
        assert!(!map.is_empty(), "crossbar needs at least one horizontal");
        let verticals = map[0].len();
        assert!(map.iter().all(|r| r.len() == verticals), "ragged PG map");
        let states = map
            .iter()
            .flat_map(|r| r.iter().map(|&l| CrosspointState::from_pg_level(l)))
            .collect();
        Crossbar {
            horizontals: map.len(),
            verticals,
            states,
        }
    }

    /// Program this crossbar into a charge matrix via the Fig. 3 protocol.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match.
    pub fn program_into(&self, matrix: &mut ProgrammingMatrix) {
        assert_eq!(matrix.rows(), self.horizontals, "matrix rows mismatch");
        assert_eq!(matrix.cols(), self.verticals, "matrix cols mismatch");
        matrix.program_map(&self.pg_map());
    }

    /// Read a crossbar back from a programmed matrix.
    pub fn from_programmed(matrix: &ProgrammingMatrix) -> Crossbar {
        Crossbar::from_pg_map(&matrix.read_map())
    }

    fn index(&self, h: usize, v: usize) -> usize {
        assert!(
            h < self.horizontals && v < self.verticals,
            "crosspoint ({h}, {v}) out of bounds"
        );
        h * self.verticals + v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_crossbar_floats_everything() {
        let xbar = Crossbar::new(2, 2);
        assert_eq!(xbar.route(&[true, false]).unwrap(), vec![None, None]);
        assert_eq!(xbar.connection_count(), 0);
    }

    #[test]
    fn permutation_routing() {
        let mut xbar = Crossbar::new(3, 3);
        xbar.connect(0, 2);
        xbar.connect(1, 0);
        xbar.connect(2, 1);
        let out = xbar.route(&[true, false, true]).unwrap();
        assert_eq!(out, vec![Some(false), Some(true), Some(true)]);
    }

    #[test]
    fn fanout_is_allowed() {
        // One horizontal may drive several verticals.
        let mut xbar = Crossbar::new(1, 3);
        xbar.connect(0, 0);
        xbar.connect(0, 2);
        let out = xbar.route(&[true]).unwrap();
        assert_eq!(out, vec![Some(true), None, Some(true)]);
    }

    #[test]
    fn short_circuit_detected() {
        let mut xbar = Crossbar::new(2, 1);
        xbar.connect(0, 0);
        xbar.connect(1, 0);
        assert_eq!(
            xbar.route(&[true, false]),
            Err(RouteError::MultipleDrivers { vertical: 0 })
        );
    }

    #[test]
    fn route_words_matches_route_per_lane() {
        // Permutation + one float: every lane word of route_words must
        // carry its driver's word (floats zero-filled), agreeing with
        // per-lane scalar route on every lane at every width.
        let mut xbar = Crossbar::new(3, 4);
        xbar.connect(0, 2);
        xbar.connect(1, 0);
        xbar.connect(2, 1); // vertical 3 floats
        for words in [1usize, 3] {
            let signals: Vec<u64> = (0..3 * words as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .collect();
            let mut out = vec![0u64; 4 * words];
            xbar.route_words(&signals, &mut out, words).unwrap();
            for lane in 0..words * 64 {
                let (w, bit) = (lane / 64, lane % 64);
                let drivers: Vec<bool> = (0..3)
                    .map(|h| signals[h * words + w] >> bit & 1 == 1)
                    .collect();
                let scalar = xbar.route(&drivers).unwrap();
                for (v, &expect) in scalar.iter().enumerate() {
                    assert_eq!(
                        out[v * words + w] >> bit & 1 == 1,
                        // Floating verticals read as 0 at the word level.
                        expect.unwrap_or(false),
                        "words {words} lane {lane} vertical {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_words_reports_shorts() {
        let mut xbar = Crossbar::new(2, 1);
        xbar.connect(0, 0);
        xbar.connect(1, 0);
        let mut out = vec![0u64; 2];
        assert_eq!(
            xbar.route_words(&[1, 2, 3, 4], &mut out, 2),
            Err(RouteError::MultipleDrivers { vertical: 0 })
        );
    }

    #[test]
    fn disconnect_undoes_connect() {
        let mut xbar = Crossbar::new(1, 1);
        xbar.connect(0, 0);
        assert_eq!(xbar.state(0, 0), CrosspointState::Connected);
        xbar.disconnect(0, 0);
        assert_eq!(xbar.route(&[true]).unwrap(), vec![None]);
    }

    #[test]
    fn vminus_decodes_as_disconnected() {
        // A p-type device with CG tied high does not conduct.
        assert_eq!(
            CrosspointState::from_pg_level(PgLevel::VMinus),
            CrosspointState::Disconnected
        );
        assert_eq!(
            CrosspointState::from_pg_level(PgLevel::VPlus),
            CrosspointState::Connected
        );
    }

    #[test]
    fn programming_roundtrip() {
        let mut xbar = Crossbar::new(2, 3);
        xbar.connect(0, 1);
        xbar.connect(1, 2);
        let mut m = ProgrammingMatrix::new(2, 3, 1.0);
        xbar.program_into(&mut m);
        let back = Crossbar::from_programmed(&m);
        assert_eq!(back, xbar);
    }

    #[test]
    fn leaked_crossbar_disconnects() {
        let mut xbar = Crossbar::new(2, 2);
        xbar.connect(0, 0);
        xbar.connect(1, 1);
        let mut m = ProgrammingMatrix::new(2, 2, 1e-9);
        xbar.program_into(&mut m);
        m.advance(1.0);
        let back = Crossbar::from_programmed(&m);
        assert_eq!(back.connection_count(), 0, "decay fails safe to open");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_connect_panics() {
        Crossbar::new(1, 1).connect(1, 0);
    }
}
