//! The two-plane GNOR PLA of Fig. 3/4.
//!
//! A GNOR PLA cascades two [`GnorPlane`]s:
//!
//! * the **input plane** (`products × inputs`) computes one product term per
//!   row: `P = x_a · x̄_b · …` is realized as `NOR(x̄_a, x_b, …)`, i.e. the
//!   control of a positive literal is `Invert` and of a negative literal is
//!   `Pass` — the complement the classical PLA needs a second column for is
//!   generated *inside* the cell;
//! * the **output plane** (`outputs × products`) NORs the product lines of
//!   each output, producing `F̄_j`; a per-output driver polarity (free in
//!   dynamic logic) restores `F_j`, or — after output-phase optimization —
//!   directly publishes the complemented function.
//!
//! The key architectural consequence: the array needs **one column per
//! input** (`i + o` columns total) instead of the classical `2i + o`.

use crate::area::PlaDimensions;
use crate::gnor::InputPolarity;
use crate::plane::GnorPlane;
use crate::sim::{self, Simulator};
use cnfet::ProgrammingMatrix;
use logic::{Cover, Tri};

use std::error::Error;
use std::fmt;

/// Error mapping a cover onto a GNOR PLA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The cover has no cubes: a PLA needs at least one product row.
    EmptyCover,
    /// The cover has no outputs.
    NoOutputs,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::EmptyCover => write!(f, "cover has no product terms"),
            MapError::NoOutputs => write!(f, "cover has no outputs"),
        }
    }
}

impl Error for MapError {}

/// A configured two-plane GNOR PLA.
///
/// # Example
///
/// ```
/// use ambipla_core::{GnorPla, Simulator};
/// use logic::Cover;
///
/// let xor = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let pla = GnorPla::from_cover(&xor);
/// assert_eq!(pla.simulate_bits(0b01), vec![true]);
/// assert_eq!(pla.simulate_bits(0b11), vec![false]);
/// assert!(pla.implements(&xor));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GnorPla {
    input_plane: GnorPlane,
    output_plane: GnorPlane,
    inverting_outputs: Vec<bool>,
}

impl GnorPla {
    /// Map a cover onto the PLA with inverting output drivers (the direct
    /// SOP mapping).
    ///
    /// # Panics
    ///
    /// Panics on an empty cover; use [`GnorPla::try_from_cover`] to handle
    /// that case.
    pub fn from_cover(cover: &Cover) -> GnorPla {
        GnorPla::try_from_cover(cover).expect("cover must be mappable")
    }

    /// Fallible version of [`GnorPla::from_cover`].
    ///
    /// # Errors
    ///
    /// [`MapError::EmptyCover`] if the cover has no cubes,
    /// [`MapError::NoOutputs`] if it has no outputs.
    pub fn try_from_cover(cover: &Cover) -> Result<GnorPla, MapError> {
        if cover.n_outputs() == 0 {
            return Err(MapError::NoOutputs);
        }
        if cover.is_empty() {
            return Err(MapError::EmptyCover);
        }
        let mut in_controls = Vec::with_capacity(cover.len());
        let mut out_controls = vec![Vec::with_capacity(cover.len()); cover.n_outputs()];
        for cube in cover.iter() {
            let row: Vec<InputPolarity> = (0..cover.n_inputs())
                .map(|i| match cube.input(i) {
                    // P = … · x_i · …  ⇒ the NOR needs x̄_i ⇒ invert.
                    Tri::One => InputPolarity::Invert,
                    // P = … · x̄_i · … ⇒ the NOR needs x_i ⇒ pass.
                    Tri::Zero => InputPolarity::Pass,
                    Tri::DontCare => InputPolarity::Drop,
                })
                .collect();
            in_controls.push(row);
            for (j, oc) in out_controls.iter_mut().enumerate() {
                oc.push(if cube.has_output(j) {
                    InputPolarity::Pass
                } else {
                    InputPolarity::Drop
                });
            }
        }
        Ok(GnorPla {
            input_plane: GnorPlane::from_controls(in_controls),
            output_plane: GnorPlane::from_controls(out_controls),
            inverting_outputs: vec![true; cover.n_outputs()],
        })
    }

    /// Assemble a PLA from explicitly configured planes and driver
    /// polarities (used by phase-optimized and Whirlpool synthesis).
    ///
    /// # Panics
    ///
    /// Panics if the output plane's column count differs from the input
    /// plane's row count, or `inverting_outputs.len()` differs from the
    /// output plane's row count.
    pub fn from_parts(
        input_plane: GnorPlane,
        output_plane: GnorPlane,
        inverting_outputs: Vec<bool>,
    ) -> GnorPla {
        assert_eq!(
            output_plane.cols(),
            input_plane.rows(),
            "output plane must read the product lines"
        );
        assert_eq!(
            inverting_outputs.len(),
            output_plane.rows(),
            "one driver polarity per output"
        );
        GnorPla {
            input_plane,
            output_plane,
            inverting_outputs,
        }
    }

    /// The input (product) plane.
    pub fn input_plane(&self) -> &GnorPlane {
        &self.input_plane
    }

    /// The output plane.
    pub fn output_plane(&self) -> &GnorPlane {
        &self.output_plane
    }

    /// Per-output driver polarities (`true` = inverting).
    pub fn inverting_outputs(&self) -> &[bool] {
        &self.inverting_outputs
    }

    /// PLA dimensions for the area model: one column per input, plus one
    /// per output; one row per product term.
    pub fn dimensions(&self) -> PlaDimensions {
        PlaDimensions {
            inputs: self.input_plane.cols(),
            outputs: self.output_plane.rows(),
            products: self.input_plane.rows(),
        }
    }

    /// Number of programmed devices over both planes.
    pub fn active_devices(&self) -> usize {
        self.input_plane.active_devices() + self.output_plane.active_devices()
    }

    /// True if the PLA implements `cover` exactly (exhaustive up to
    /// [`logic::eval::EXHAUSTIVE_LIMIT`] inputs, sampled beyond).
    ///
    /// # Panics
    ///
    /// Panics if the cover arity differs from the PLA's.
    pub fn implements(&self, cover: &Cover) -> bool {
        assert_eq!(cover.n_inputs(), self.input_plane.cols());
        assert_eq!(cover.n_outputs(), self.output_plane.rows());
        sim::implements_cover(self, cover)
    }

    /// Reconstruct the cover this PLA realizes, when the configuration is a
    /// standard SOP mapping (every driver inverting). Returns `None` for
    /// phase-optimized arrays whose outputs publish complements — extract
    /// those per output and complement explicitly.
    pub fn extract_cover(&self) -> Option<Cover> {
        if self.inverting_outputs.iter().any(|&inv| !inv) {
            return None;
        }
        let n = self.input_plane.cols();
        let o = self.output_plane.rows();
        let p = self.input_plane.rows();
        let mut cubes = Vec::with_capacity(p);
        for r in 0..p {
            let gate = self.input_plane.gate(r);
            let tris: Vec<Tri> = (0..n)
                .map(|i| match gate.control(i) {
                    InputPolarity::Invert => Tri::One,
                    InputPolarity::Pass => Tri::Zero,
                    InputPolarity::Drop => Tri::DontCare,
                })
                .collect();
            let outs: Vec<bool> = (0..o)
                .map(|j| self.output_plane.gate(j).control(r) == InputPolarity::Pass)
                .collect();
            if outs.iter().any(|&b| b) {
                cubes.push(logic::Cube::from_tris(&tris, &outs));
            }
        }
        Some(Cover::from_cubes(n, o, cubes))
    }

    /// Prove (with BDDs — complete at any width) that this PLA implements
    /// `cover`. Falls back to the exhaustive/sampled [`GnorPla::implements`]
    /// when the configuration is not extractable (phase-optimized drivers).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn implements_proved(&self, cover: &Cover) -> bool {
        match self.extract_cover() {
            Some(own) => logic::bdd_equivalent(&own, cover),
            None => self.implements(cover),
        }
    }

    /// Program both planes into fresh charge matrices with retention `tau`
    /// and return them (input-plane matrix first).
    pub fn program(&self, tau: f64) -> (ProgrammingMatrix, ProgrammingMatrix) {
        let mut m1 = ProgrammingMatrix::new(self.input_plane.rows(), self.input_plane.cols(), tau);
        let mut m2 =
            ProgrammingMatrix::new(self.output_plane.rows(), self.output_plane.cols(), tau);
        self.input_plane.program_into(&mut m1);
        self.output_plane.program_into(&mut m2);
        (m1, m2)
    }

    /// Rebuild a PLA from programmed matrices (array readback) and driver
    /// polarities.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shapes are inconsistent (see
    /// [`GnorPla::from_parts`]).
    pub fn from_programmed(
        input_matrix: &ProgrammingMatrix,
        output_matrix: &ProgrammingMatrix,
        inverting_outputs: Vec<bool>,
    ) -> GnorPla {
        GnorPla::from_parts(
            GnorPlane::from_programmed(input_matrix),
            GnorPlane::from_programmed(output_matrix),
            inverting_outputs,
        )
    }
}

impl Simulator for GnorPla {
    fn n_inputs(&self) -> usize {
        self.input_plane.cols()
    }

    fn n_outputs(&self) -> usize {
        self.output_plane.rows()
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        // One product-line buffer per call, amortized over words × 64
        // lanes; the planes assert all arities.
        let mut products = vec![0u64; self.input_plane.rows() * words];
        self.input_plane
            .evaluate_words(inputs, &mut products, words);
        self.output_plane.evaluate_words(&products, out, words);
        for (row, &inv) in out.chunks_exact_mut(words).zip(&self.inverting_outputs) {
            if inv {
                for w in row {
                    *w = !*w;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn xor_maps_and_simulates() {
        let f = cover("10 1\n01 1", 2, 1);
        let pla = GnorPla::from_cover(&f);
        assert!(pla.implements(&f));
        let d = pla.dimensions();
        assert_eq!((d.inputs, d.outputs, d.products), (2, 1, 2));
    }

    #[test]
    fn full_adder_maps_and_simulates() {
        let f = cover(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        );
        let pla = GnorPla::from_cover(&f);
        assert!(pla.implements(&f));
        for bits in 0..8u64 {
            assert_eq!(
                pla.simulate_bits(bits),
                f.eval_bits(bits),
                "bits={bits:03b}"
            );
        }
    }

    #[test]
    fn shared_product_terms_share_rows() {
        // One cube drives both outputs: a single physical row.
        let f = cover("11 11\n0- 10", 2, 2);
        let pla = GnorPla::from_cover(&f);
        assert_eq!(pla.dimensions().products, 2);
        assert!(pla.implements(&f));
    }

    #[test]
    fn dont_care_literals_drop_devices() {
        let f = cover("1-- 1", 3, 1);
        let pla = GnorPla::from_cover(&f);
        // One literal in plane 1 plus one connection in plane 2.
        assert_eq!(pla.active_devices(), 2);
        assert!(pla.implements(&f));
    }

    #[test]
    fn undriven_output_is_constant_false() {
        let f = cover("11 10", 2, 2);
        let pla = GnorPla::from_cover(&f);
        for bits in 0..4u64 {
            assert!(!pla.simulate_bits(bits)[1]);
        }
        assert!(pla.implements(&f));
    }

    #[test]
    fn constant_true_product_row() {
        // An all-don't-care cube: output 0 is constant 1.
        let f = cover("-- 1", 2, 1);
        let pla = GnorPla::from_cover(&f);
        for bits in 0..4u64 {
            assert!(pla.simulate_bits(bits)[0]);
        }
    }

    #[test]
    fn empty_cover_rejected() {
        let f = Cover::new(3, 1);
        assert_eq!(GnorPla::try_from_cover(&f), Err(MapError::EmptyCover));
    }

    #[test]
    fn non_inverting_driver_publishes_complement() {
        let f = cover("1- 1", 2, 1);
        let direct = GnorPla::from_cover(&f);
        let complemented = GnorPla::from_parts(
            direct.input_plane().clone(),
            direct.output_plane().clone(),
            vec![false],
        );
        for bits in 0..4u64 {
            assert_eq!(
                complemented.simulate_bits(bits)[0],
                !direct.simulate_bits(bits)[0]
            );
        }
    }

    #[test]
    fn programming_roundtrip_preserves_function() {
        let f = cover("10- 10\n-01 01\n11- 11", 3, 2);
        let pla = GnorPla::from_cover(&f);
        let (m1, m2) = pla.program(1.0);
        let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
        assert_eq!(back, pla);
        assert!(back.implements(&f));
    }

    #[test]
    fn leaky_programming_fails_safe() {
        let f = cover("10 1\n01 1", 2, 1);
        let pla = GnorPla::from_cover(&f);
        let (mut m1, mut m2) = pla.program(1e-9);
        m1.advance(1.0);
        m2.advance(1.0);
        let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
        // Everything decayed to V0: planes unconfigured, outputs constant.
        assert_eq!(back.active_devices(), 0);
        // NOR of nothing = 1, inverted driver → constant 0: no spurious 1s
        // from a decayed array.
        for bits in 0..4u64 {
            assert_eq!(back.simulate_bits(bits), vec![false]);
        }
    }

    #[test]
    fn extract_cover_roundtrips() {
        let f = cover("10- 10\n-01 01\n11- 11", 3, 2);
        let pla = GnorPla::from_cover(&f);
        let back = pla.extract_cover().expect("standard mapping extracts");
        assert_eq!(back, f);
        assert!(pla.implements_proved(&f));
    }

    #[test]
    fn extraction_refuses_phase_optimized_drivers() {
        let f = cover("1- 1", 2, 1);
        let direct = GnorPla::from_cover(&f);
        let flipped = GnorPla::from_parts(
            direct.input_plane().clone(),
            direct.output_plane().clone(),
            vec![false],
        );
        assert!(flipped.extract_cover().is_none());
    }

    #[test]
    fn proved_equivalence_on_wide_benchmark() {
        // 17 inputs: implements() samples, implements_proved() proves.
        let b = Cover::parse("11111111111111111 1\n00000000000000000 1", 17, 1).unwrap();
        let pla = GnorPla::from_cover(&b);
        assert!(pla.implements_proved(&b));
    }

    #[test]
    fn dimensions_count_single_input_columns() {
        // The architectural claim: i + o columns, not 2i + o.
        let b = cover("10-1 1\n01-- 1", 4, 1);
        let pla = GnorPla::from_cover(&b);
        let d = pla.dimensions();
        assert_eq!(d.column_count_cnfet(), 5); // 4 inputs + 1 output
        assert_eq!(d.column_count_classical(), 9); // 2*4 + 1
    }
}
