//! A GNOR plane: an array of GNOR gates sharing input columns (Fig. 4).
//!
//! Each row of the plane is one [`GnorGate`]; all rows see the same column
//! inputs. The configuration of the whole plane is a `rows × cols` matrix of
//! [`InputPolarity`] values — equivalently, of PG charge levels, which is
//! exactly what the Fig. 3 programming protocol writes.

use crate::gnor::{GnorGate, InputPolarity};
use cnfet::{PgLevel, ProgrammingMatrix};

/// A `rows × cols` array of GNOR gates over shared input columns.
///
/// # Example
///
/// ```
/// use ambipla_core::{GnorPlane, InputPolarity::*};
///
/// // Two rows over columns (a, b): row0 = NOR(a, b̄), row1 = NOR(ā).
/// let plane = GnorPlane::from_controls(vec![
///     vec![Pass, Invert],
///     vec![Invert, Drop],
/// ]);
/// assert_eq!(plane.evaluate(&[false, true]), vec![true, false]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GnorPlane {
    cols: usize,
    rows: Vec<GnorGate>,
}

impl GnorPlane {
    /// An unconfigured plane (every device at `V0`).
    pub fn unconfigured(rows: usize, cols: usize) -> GnorPlane {
        GnorPlane {
            cols,
            rows: (0..rows).map(|_| GnorGate::unconfigured(cols)).collect(),
        }
    }

    /// Build a plane from a full control matrix.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or the matrix is empty.
    pub fn from_controls(controls: Vec<Vec<InputPolarity>>) -> GnorPlane {
        assert!(!controls.is_empty(), "a plane needs at least one row");
        let cols = controls[0].len();
        assert!(
            controls.iter().all(|r| r.len() == cols),
            "ragged control matrix"
        );
        GnorPlane {
            cols,
            rows: controls.into_iter().map(GnorGate::new).collect(),
        }
    }

    /// Number of rows (GNOR gates).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of input columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The gate at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn gate(&self, row: usize) -> &GnorGate {
        &self.rows[row]
    }

    /// Mutable access to the gate at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn gate_mut(&mut self, row: usize) -> &mut GnorGate {
        &mut self.rows[row]
    }

    /// Iterate over the gates.
    pub fn gates(&self) -> impl Iterator<Item = &GnorGate> {
        self.rows.iter()
    }

    /// Evaluate every row on the shared column inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != cols()`.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.cols, "input arity mismatch");
        self.rows.iter().map(|g| g.evaluate(inputs)).collect()
    }

    /// Width-generic bit-parallel evaluation: `words` lane words per
    /// input column in (`inputs[i·words + w]`, signal-major), `words`
    /// lane words per row out. See [`GnorGate::evaluate_words`].
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`, `inputs.len() != cols() × words`, or
    /// `out.len() != rows() × words`.
    pub fn evaluate_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), self.cols * words, "input arity mismatch");
        assert_eq!(
            out.len(),
            self.rows.len() * words,
            "output buffer size mismatch"
        );
        for (g, row) in self.rows.iter().zip(out.chunks_exact_mut(words)) {
            g.evaluate_words(inputs, row, words);
        }
    }

    /// Bit-parallel evaluation over 64 lanes: one word per input column in,
    /// one word per row out — [`GnorPlane::evaluate_words`] with
    /// `words = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != cols()`.
    pub fn evaluate_batch(&self, inputs: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; self.rows.len()];
        self.evaluate_words(inputs, &mut out, 1);
        out
    }

    /// Number of programmed (non-`V0`) devices — the used crosspoints.
    pub fn active_devices(&self) -> usize {
        self.rows.iter().map(|g| g.active_inputs()).sum()
    }

    /// The PG-level map of the whole plane (row-major), as written by the
    /// configuration protocol.
    pub fn pg_map(&self) -> Vec<Vec<PgLevel>> {
        self.rows.iter().map(|g| g.pg_levels()).collect()
    }

    /// Rebuild a plane from a PG-level map (array readback).
    ///
    /// # Panics
    ///
    /// Panics if the map is empty or ragged.
    pub fn from_pg_map(map: &[Vec<PgLevel>]) -> GnorPlane {
        assert!(!map.is_empty(), "a plane needs at least one row");
        let cols = map[0].len();
        assert!(map.iter().all(|r| r.len() == cols), "ragged PG map");
        GnorPlane {
            cols,
            rows: map.iter().map(|r| GnorGate::from_pg_levels(r)).collect(),
        }
    }

    /// Program this plane's configuration into a charge matrix using the
    /// Fig. 3 row/column protocol (one pulse per device).
    ///
    /// # Panics
    ///
    /// Panics if the matrix dimensions do not match the plane.
    pub fn program_into(&self, matrix: &mut ProgrammingMatrix) {
        assert_eq!(matrix.rows(), self.rows(), "matrix row count mismatch");
        assert_eq!(matrix.cols(), self.cols(), "matrix column count mismatch");
        matrix.program_map(&self.pg_map());
    }

    /// Read a plane back from a programmed charge matrix.
    pub fn from_programmed(matrix: &ProgrammingMatrix) -> GnorPlane {
        GnorPlane::from_pg_map(&matrix.read_map())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnor::InputPolarity::*;

    fn sample_plane() -> GnorPlane {
        GnorPlane::from_controls(vec![
            vec![Pass, Invert, Drop],
            vec![Invert, Drop, Pass],
            vec![Drop, Drop, Drop],
        ])
    }

    #[test]
    fn dimensions() {
        let p = sample_plane();
        assert_eq!(p.rows(), 3);
        assert_eq!(p.cols(), 3);
        assert_eq!(p.active_devices(), 4);
    }

    #[test]
    fn evaluation_is_per_row_gnor() {
        let p = sample_plane();
        let out = p.evaluate(&[false, true, false]);
        // row0: NOR(a, b̄) = NOR(0, 0) = 1
        // row1: NOR(ā, c) = NOR(1, 0) = 0
        // row2: unconfigured = 1
        assert_eq!(out, vec![true, false, true]);
    }

    #[test]
    fn unconfigured_plane_outputs_all_ones() {
        let p = GnorPlane::unconfigured(2, 4);
        assert_eq!(p.evaluate(&[true; 4]), vec![true, true]);
        assert_eq!(p.active_devices(), 0);
    }

    #[test]
    fn pg_map_roundtrip() {
        let p = sample_plane();
        assert_eq!(GnorPlane::from_pg_map(&p.pg_map()), p);
    }

    #[test]
    fn programming_roundtrip_through_charge_matrix() {
        let p = sample_plane();
        let mut m = ProgrammingMatrix::new(3, 3, 1.0);
        p.program_into(&mut m);
        let back = GnorPlane::from_programmed(&m);
        assert_eq!(back, p);
        // One pulse per device, as the protocol requires.
        assert_eq!(m.pulse_count(), 9);
    }

    #[test]
    fn leaked_array_reads_back_as_unconfigured() {
        let p = sample_plane();
        let mut m = ProgrammingMatrix::new(3, 3, 1e-6);
        p.program_into(&mut m);
        m.advance(1.0); // far past retention
        let back = GnorPlane::from_programmed(&m);
        assert_eq!(back, GnorPlane::unconfigured(3, 3));
    }

    #[test]
    #[should_panic(expected = "ragged control matrix")]
    fn ragged_matrix_rejected() {
        let _ = GnorPlane::from_controls(vec![vec![Pass], vec![Pass, Drop]]);
    }
}
