//! Dynamic-logic timing of the GNOR PLA.
//!
//! First-order RC timing on top of [`cnfet::DeviceParams`]: each GNOR row is
//! a dynamic node loaded by the wire spanning its columns plus the gate it
//! fans out to; evaluation discharges it through the pull-down device in
//! series with the evaluation transistor `TEV`. The two planes of a PLA
//! evaluate in sequence (domino style), while both precharge in parallel —
//! giving the cycle time and maximum clock frequency used by the FPGA
//! emulation in the `fpga` crate.

use crate::pla::GnorPla;
use cnfet::{CnfetTech, DeviceParams, Polarity};

/// ln 2 — the 50 %-swing factor of an RC transition.
const LN2: f64 = core::f64::consts::LN_2;

/// Timing model: device electricals plus array geometry.
///
/// # Example
///
/// ```
/// use ambipla_core::{GnorPla, TimingModel};
/// use logic::Cover;
///
/// let pla = GnorPla::from_cover(&Cover::parse("10 1\n01 1", 2, 1).unwrap());
/// let t = TimingModel::nominal(32.0).pla_timing(&pla);
/// assert!(t.frequency() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Device I–V and capacitance parameters.
    pub device: DeviceParams,
    /// Layout rules (cell pitch → wire capacitance scaling).
    pub tech: CnfetTech,
}

impl TimingModel {
    /// Model with nominal device parameters at lithography pitch
    /// `litho_nm`.
    pub fn nominal(litho_nm: f64) -> TimingModel {
        TimingModel {
            device: DeviceParams::nominal(),
            tech: CnfetTech::nominal(litho_nm),
        }
    }

    /// Delay (seconds) of one dynamic NOR transition on a line spanning
    /// `span_cells` cells and fanning out to `fanout` gate inputs:
    /// `ln2 · 2R_on · C_line` (pull-down device in series with `TEV`).
    pub fn line_delay(&self, span_cells: usize, fanout: usize) -> f64 {
        let c_line = self.device.c_wire_per_cell * span_cells as f64
            + self.device.c_gate * fanout.max(1) as f64;
        let r = 2.0 * self.device.r_on(Polarity::NType);
        LN2 * r * c_line
    }

    /// Full timing of a two-plane GNOR PLA.
    pub fn pla_timing(&self, pla: &GnorPla) -> PlaTiming {
        let dims = pla.dimensions();
        // Plane 1: each product row spans the input columns and drives one
        // output-plane input.
        let t_eval_plane1 = self.line_delay(dims.inputs, dims.outputs);
        // Plane 2: each output row spans the product columns, drives the
        // output buffer.
        let t_eval_plane2 = self.line_delay(dims.products, 1);
        // Precharge happens in parallel on both planes; the slower wins.
        let t_precharge = t_eval_plane1.max(t_eval_plane2);
        PlaTiming {
            t_precharge,
            t_eval_plane1,
            t_eval_plane2,
        }
    }
}

/// Timing breakdown of one PLA access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaTiming {
    /// Parallel precharge of both planes, seconds.
    pub t_precharge: f64,
    /// Evaluation of the input (product) plane, seconds.
    pub t_eval_plane1: f64,
    /// Evaluation of the output plane, seconds.
    pub t_eval_plane2: f64,
}

impl PlaTiming {
    /// Total evaluate phase: the domino cascade of the two planes.
    pub fn t_evaluate(&self) -> f64 {
        self.t_eval_plane1 + self.t_eval_plane2
    }

    /// Full precharge+evaluate cycle time, seconds.
    pub fn cycle_time(&self) -> f64 {
        self.t_precharge + self.t_evaluate()
    }

    /// Maximum clock frequency, hertz.
    pub fn frequency(&self) -> f64 {
        1.0 / self.cycle_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::Cover;

    fn pla(i: usize, o: usize, p: usize) -> GnorPla {
        let cover = mcnc_like(i, o, p);
        GnorPla::from_cover(&cover)
    }

    // A tiny deterministic cover generator good enough for timing shapes.
    fn mcnc_like(i: usize, o: usize, p: usize) -> Cover {
        use logic::{Cube, Tri};
        let mut cubes = Vec::new();
        for r in 0..p {
            let mut tris = vec![Tri::DontCare; i];
            tris[r % i] = if r % 2 == 0 { Tri::One } else { Tri::Zero };
            let mut outs = vec![false; o];
            outs[r % o] = true;
            cubes.push(Cube::from_tris(&tris, &outs));
        }
        Cover::from_cubes(i, o, cubes)
    }

    #[test]
    fn delays_are_positive_and_finite() {
        let m = TimingModel::nominal(32.0);
        let t = m.pla_timing(&pla(8, 4, 16));
        assert!(t.t_precharge > 0.0 && t.t_precharge.is_finite());
        assert!(t.t_evaluate() > t.t_eval_plane1);
        assert!(t.frequency() > 0.0);
    }

    #[test]
    fn bigger_arrays_are_slower() {
        let m = TimingModel::nominal(32.0);
        let small = m.pla_timing(&pla(4, 2, 8));
        let large = m.pla_timing(&pla(16, 8, 64));
        assert!(large.cycle_time() > small.cycle_time());
        assert!(large.frequency() < small.frequency());
    }

    #[test]
    fn precharge_is_the_slower_plane() {
        let m = TimingModel::nominal(32.0);
        let t = m.pla_timing(&pla(4, 2, 32));
        assert!((t.t_precharge - t.t_eval_plane1.max(t.t_eval_plane2)).abs() < 1e-18);
    }

    #[test]
    fn line_delay_grows_with_span_and_fanout() {
        let m = TimingModel::nominal(32.0);
        assert!(m.line_delay(10, 1) > m.line_delay(1, 1));
        assert!(m.line_delay(10, 8) > m.line_delay(10, 1));
    }

    #[test]
    fn frequency_in_plausible_range() {
        // Sanity: a mid-size PLA in this technology should clock somewhere
        // between 10 MHz and 100 GHz — catches unit errors (mF vs fF etc.).
        let m = TimingModel::nominal(32.0);
        let f = m.pla_timing(&pla(10, 6, 25)).frequency();
        assert!(f > 1e7, "too slow: {f}");
        assert!(f < 1e11, "too fast: {f}");
    }
}
