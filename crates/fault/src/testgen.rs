//! Test-pattern generation for single crosspoint faults.
//!
//! Classic PLA testing adapted to the GNOR array: every crosspoint can be
//! stuck-off (device never conducts → *growth* of the product, or a lost
//! output connection) or stuck-on (line pinned low → *disappearance* of a
//! product or a constant output). The generator enumerates every single
//! fault, finds detecting input vectors by fault simulation, and greedily
//! compacts them into a small test set.
//!
//! Faults with no functional effect (e.g. stuck-off on a position that is
//! programmed `V0` anyway) are classified **benign** — they are reported
//! but need no pattern.

use crate::defect::{DefectKind, DefectMap};
use crate::inject::FaultyGnorPla;
use ambipla_core::{GnorPla, Simulator};
use logic::Cover;

/// Maximum input count for exhaustive test generation.
pub const TESTGEN_INPUT_LIMIT: usize = 12;

/// One single crosspoint fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SingleFault {
    /// Fault in the input (product) plane at `(row, col)`.
    Input {
        /// Product row.
        row: usize,
        /// Input column.
        col: usize,
        /// Failure mode.
        kind: DefectKind,
    },
    /// Fault in the output plane at `(output, row)`.
    Output {
        /// Output line.
        output: usize,
        /// Product row.
        row: usize,
        /// Failure mode.
        kind: DefectKind,
    },
}

impl SingleFault {
    /// The defect map containing exactly this fault.
    fn to_map(self, rows: usize, inputs: usize, outputs: usize) -> DefectMap {
        let mut map = DefectMap::clean(rows, inputs, outputs);
        match self {
            SingleFault::Input { row, col, kind } => map.set_input_defect(row, col, kind),
            SingleFault::Output { output, row, kind } => map.set_output_defect(output, row, kind),
        }
        map
    }
}

/// A generated test set with its fault-coverage accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSet {
    /// Compacted test patterns (packed input assignments).
    pub patterns: Vec<u64>,
    /// Faults detected by the pattern set.
    pub detected: usize,
    /// Faults with no functional effect (need no pattern).
    pub benign: usize,
    /// Total single faults enumerated.
    pub total: usize,
}

impl TestSet {
    /// Coverage of the *detectable* faults (benign excluded): 1.0 means
    /// every functional fault is caught.
    pub fn coverage(&self) -> f64 {
        let detectable = self.total - self.benign;
        if detectable == 0 {
            1.0
        } else {
            self.detected as f64 / detectable as f64
        }
    }
}

/// Enumerate every single crosspoint fault of a PLA with the given
/// dimensions.
pub fn enumerate_faults(rows: usize, inputs: usize, outputs: usize) -> Vec<SingleFault> {
    let mut faults = Vec::new();
    for row in 0..rows {
        for col in 0..inputs {
            for kind in [DefectKind::StuckOff, DefectKind::StuckOn] {
                faults.push(SingleFault::Input { row, col, kind });
            }
        }
    }
    for output in 0..outputs {
        for row in 0..rows {
            for kind in [DefectKind::StuckOff, DefectKind::StuckOn] {
                faults.push(SingleFault::Output { output, row, kind });
            }
        }
    }
    faults
}

/// Generate a compact test set detecting every detectable single
/// crosspoint fault of the GNOR PLA implementing `cover`.
///
/// # Panics
///
/// Panics if the cover is empty or has more than
/// [`TESTGEN_INPUT_LIMIT`] inputs.
pub fn generate_tests(cover: &Cover) -> TestSet {
    assert!(!cover.is_empty(), "cover must have product terms");
    let n = cover.n_inputs();
    assert!(
        n <= TESTGEN_INPUT_LIMIT,
        "test generation limited to {TESTGEN_INPUT_LIMIT} inputs"
    );
    let pla = GnorPla::from_cover(cover);
    let dims = pla.dimensions();
    let space = 1u64 << n;

    // Golden responses.
    let golden: Vec<Vec<bool>> = (0..space).map(|bits| pla.simulate_bits(bits)).collect();

    // Detecting vectors per fault.
    let faults = enumerate_faults(dims.products, dims.inputs, dims.outputs);
    let mut detectors: Vec<Vec<u64>> = Vec::with_capacity(faults.len());
    let mut benign = 0usize;
    for &fault in &faults {
        let map = fault.to_map(dims.products, dims.inputs, dims.outputs);
        let faulty = FaultyGnorPla::new(pla.clone(), map);
        let vs: Vec<u64> = (0..space)
            .filter(|&bits| faulty.simulate_bits(bits) != golden[bits as usize])
            .collect();
        if vs.is_empty() {
            benign += 1;
        }
        detectors.push(vs);
    }

    // Greedy compaction: repeatedly take the vector detecting the most
    // still-undetected faults.
    let mut undetected: Vec<usize> = (0..faults.len())
        .filter(|&k| !detectors[k].is_empty())
        .collect();
    let mut patterns = Vec::new();
    let mut detected = 0usize;
    while !undetected.is_empty() {
        let mut best_vec = 0u64;
        let mut best_hits = 0usize;
        for bits in 0..space {
            let hits = undetected
                .iter()
                .filter(|&&k| detectors[k].binary_search(&bits).is_ok())
                .count();
            if hits > best_hits {
                best_hits = hits;
                best_vec = bits;
            }
        }
        debug_assert!(best_hits > 0, "undetected faults must have detectors");
        patterns.push(best_vec);
        detected += best_hits;
        undetected.retain(|&k| detectors[k].binary_search(&best_vec).is_err());
    }

    TestSet {
        patterns,
        detected,
        benign,
        total: faults.len(),
    }
}

/// Verify a test set: apply every pattern to every single-fault machine
/// and count the faults whose response differs from golden on at least one
/// pattern. Returns `(caught, detectable)`.
pub fn verify_tests(cover: &Cover, patterns: &[u64]) -> (usize, usize) {
    let pla = GnorPla::from_cover(cover);
    let dims = pla.dimensions();
    let n = cover.n_inputs();
    let space = 1u64 << n;
    let golden: Vec<Vec<bool>> = (0..space).map(|bits| pla.simulate_bits(bits)).collect();
    let faults = enumerate_faults(dims.products, dims.inputs, dims.outputs);
    let mut caught = 0;
    let mut detectable = 0;
    for &fault in &faults {
        let map = fault.to_map(dims.products, dims.inputs, dims.outputs);
        let faulty = FaultyGnorPla::new(pla.clone(), map);
        let is_detectable =
            (0..space).any(|bits| faulty.simulate_bits(bits) != golden[bits as usize]);
        if is_detectable {
            detectable += 1;
            if patterns
                .iter()
                .any(|&bits| faulty.simulate_bits(bits) != golden[bits as usize])
            {
                caught += 1;
            }
        }
    }
    (caught, detectable)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor() -> Cover {
        Cover::parse("10 1\n01 1", 2, 1).expect("valid cover")
    }

    #[test]
    fn fault_universe_size() {
        // 2 rows × 2 cols × 2 kinds + 1 out × 2 rows × 2 kinds = 12.
        assert_eq!(enumerate_faults(2, 2, 1).len(), 12);
    }

    #[test]
    fn xor_test_set_has_full_coverage() {
        let ts = generate_tests(&xor());
        assert_eq!(ts.coverage(), 1.0);
        let (caught, detectable) = verify_tests(&xor(), &ts.patterns);
        assert_eq!(caught, detectable);
        assert_eq!(ts.detected, detectable);
    }

    #[test]
    fn compaction_beats_one_pattern_per_fault() {
        let ts = generate_tests(&xor());
        assert!(
            ts.patterns.len() < ts.detected,
            "{} patterns for {} faults",
            ts.patterns.len(),
            ts.detected
        );
        // XOR over 2 inputs: 4 vectors suffice trivially.
        assert!(ts.patterns.len() <= 4);
    }

    #[test]
    fn benign_faults_on_dropped_positions() {
        // f = x0 with a dropped column: stuck-off faults at the dropped
        // position are benign.
        let f = Cover::parse("1- 1", 2, 1).unwrap();
        let ts = generate_tests(&f);
        assert!(ts.benign > 0);
        assert_eq!(ts.coverage(), 1.0);
    }

    #[test]
    fn full_adder_coverage() {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .unwrap();
        let ts = generate_tests(&f);
        assert_eq!(ts.coverage(), 1.0);
        assert!(ts.patterns.len() <= 8, "test set fits the input space");
        let (caught, detectable) = verify_tests(&f, &ts.patterns);
        assert_eq!(caught, detectable);
    }

    #[test]
    fn patterns_are_within_input_space() {
        let ts = generate_tests(&xor());
        for &p in &ts.patterns {
            assert!(p < 4);
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_wide_rejected() {
        let mut c = Cover::new(13, 1);
        c.push(logic::Cube::universe(13, 1));
        let _ = generate_tests(&c);
    }
}
