//! Two-dimensional redundancy: spare rows *and* spare input columns.
//!
//! Row re-assignment (see [`mod@crate::repair`]) cannot help when one input
//! column accumulates stuck-off devices: every cube with a literal on that
//! input is blocked from rows whose device there is dead. Because the
//! Fig. 3 interconnect can route any primary input to any physical column,
//! the array can also be fabricated with **spare columns**, and repair
//! becomes a two-stage assignment:
//!
//! 1. map each logical input to a healthy physical column (greedy, fewest
//!    stuck-off devices first for the literal-heaviest inputs),
//! 2. run the bipartite row matching of [`mod@crate::repair`] under that
//!    column mapping.
//!
//! Stuck-on devices still kill their whole physical row (they discharge it
//! regardless of which signal the column carries), so column repair
//! composes with — rather than replaces — spare rows.

use crate::defect::{DefectKind, DefectMap};
use ambipla_core::{GnorPla, GnorPlane, InputPolarity, Simulator};
use logic::{Cover, Tri};

/// Result of a 2D repair attempt.
#[derive(Debug, Clone)]
pub enum ColumnRepairOutcome {
    /// A defect-avoiding 2D assignment was found.
    Repaired(ColumnRepairedPla),
    /// No assignment exists.
    Unrepairable {
        /// First obstruction found.
        reason: String,
    },
}

impl ColumnRepairOutcome {
    /// True if the array was repaired.
    pub fn is_repaired(&self) -> bool {
        matches!(self, ColumnRepairOutcome::Repaired(_))
    }
}

/// A physically configured PLA plus the input-to-column routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRepairedPla {
    /// The configuration over the physical array (all physical columns).
    pub pla: GnorPla,
    /// `column_of_input[i]` = physical column carrying logical input `i`.
    pub column_of_input: Vec<usize>,
    /// `row_of_cube[c]` = physical row hosting cube `c`.
    pub row_of_cube: Vec<usize>,
}

impl ColumnRepairedPla {
    /// Simulate the repaired array on *logical* inputs (the interconnect
    /// permutation is applied here).
    pub fn simulate_logical(&self, inputs: &[bool]) -> Vec<bool> {
        let phys = self.physical_inputs(inputs);
        self.pla.simulate(&phys)
    }

    /// The repaired array fault-simulated under `defects` as a servable
    /// [`Simulator`] over *logical* inputs: the interconnect permutation
    /// is applied inside `eval_words`, so the view drops straight into
    /// anything that serves `&dyn Simulator` — including a hot swap that
    /// replaces a defective backend with its repaired twin. The view is
    /// cheap to clone (the array is shared, see
    /// [`FaultyGnorPla`](crate::inject::FaultyGnorPla)).
    ///
    /// # Panics
    ///
    /// Panics if the defect map dimensions do not match the physical
    /// array.
    pub fn faulty_view(&self, defects: &DefectMap) -> RepairedView {
        RepairedView {
            faulty: crate::inject::FaultyGnorPla::new(self.pla.clone(), defects.clone()),
            column_of_input: self.column_of_input.clone(),
        }
    }
}

/// A column-repaired PLA under its defect map, simulated on logical
/// inputs — see [`ColumnRepairedPla::faulty_view`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairedView {
    faulty: crate::inject::FaultyGnorPla,
    column_of_input: Vec<usize>,
}

impl RepairedView {
    /// The underlying fault-simulated physical array.
    pub fn faulty(&self) -> &crate::inject::FaultyGnorPla {
        &self.faulty
    }
}

impl Simulator for RepairedView {
    fn n_inputs(&self) -> usize {
        self.column_of_input.len()
    }

    fn n_outputs(&self) -> usize {
        self.faulty.n_outputs()
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        let n = self.column_of_input.len();
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), n * words, "input arity mismatch");
        // Route each logical signal's lane words onto its physical
        // column; unrouted (spare) columns read 0, matching
        // `physical_inputs`. Signal-major layout makes this whole-word
        // copies.
        let phys_n = self.faulty.n_inputs();
        let mut phys = vec![0u64; phys_n * words];
        for (i, &c) in self.column_of_input.iter().enumerate() {
            phys[c * words..(c + 1) * words].copy_from_slice(&inputs[i * words..(i + 1) * words]);
        }
        self.faulty.eval_words(&phys, out, words);
    }
}

impl ColumnRepairedPla {
    /// Spread logical inputs onto the physical columns (unused columns are
    /// driven low; their devices are all `V0` so the value is irrelevant).
    pub fn physical_inputs(&self, inputs: &[bool]) -> Vec<bool> {
        let n_phys = self.pla.dimensions().inputs;
        let mut phys = vec![false; n_phys];
        for (i, &c) in self.column_of_input.iter().enumerate() {
            phys[c] = inputs[i];
        }
        phys
    }
}

/// Attempt 2D repair of `cover` on the physical array described by
/// `defects` (`defects.inputs()` ≥ `cover.n_inputs()` supplies the spare
/// columns, `defects.rows()` ≥ `cover.len()` the spare rows).
///
/// # Panics
///
/// Panics if the defect map is smaller than the cover in either dimension
/// or the output counts differ.
pub fn repair_with_columns(cover: &Cover, defects: &DefectMap) -> ColumnRepairOutcome {
    let n = cover.n_inputs();
    let p = cover.len();
    let rows = defects.rows();
    let cols = defects.inputs();
    assert!(
        cols >= n,
        "need at least as many physical columns as inputs"
    );
    assert!(rows >= p, "need at least as many physical rows as cubes");
    assert_eq!(
        defects.outputs(),
        cover.n_outputs(),
        "output count mismatch"
    );

    for j in 0..cover.n_outputs() {
        if defects.output_line_has_stuck_on(j) {
            return ColumnRepairOutcome::Unrepairable {
                reason: format!("output line {j} has a stuck-on device"),
            };
        }
    }

    // Stage 1: greedy column assignment. Inputs with the most literals get
    // the columns with the fewest stuck-off devices.
    let mut input_order: Vec<usize> = (0..n).collect();
    let literal_load = |i: usize| cover.iter().filter(|c| c.input(i) != Tri::DontCare).count();
    input_order.sort_by_key(|&i| std::cmp::Reverse(literal_load(i)));
    let stuck_offs_in_col = |c: usize| {
        (0..rows)
            .filter(|&r| defects.input_defect(r, c) == Some(DefectKind::StuckOff))
            .count()
    };
    let mut used = vec![false; cols];
    let mut column_of_input = vec![usize::MAX; n];
    for &i in &input_order {
        let best = (0..cols)
            .filter(|&c| !used[c])
            .min_by_key(|&c| stuck_offs_in_col(c))
            .expect("cols >= n guarantees a free column");
        used[best] = true;
        column_of_input[i] = best;
    }

    // Stage 2: row matching under the column mapping (Kuhn's algorithm,
    // same structure as crate::repair).
    let row_fits = |cube_idx: usize, r: usize| -> bool {
        if defects.row_has_stuck_on(r) {
            return false;
        }
        let cube = &cover.cubes()[cube_idx];
        for (i, &col) in column_of_input.iter().enumerate() {
            if cube.input(i) != Tri::DontCare
                && defects.input_defect(r, col) == Some(DefectKind::StuckOff)
            {
                return false;
            }
        }
        cube.outputs()
            .all(|j| defects.output_defect(j, r) != Some(DefectKind::StuckOff))
    };
    let compatible: Vec<Vec<usize>> = (0..p)
        .map(|c| (0..rows).filter(|&r| row_fits(c, r)).collect())
        .collect();
    if let Some(c) = compatible.iter().position(|v| v.is_empty()) {
        return ColumnRepairOutcome::Unrepairable {
            reason: format!("no usable physical row for product term {c}"),
        };
    }
    let mut row_owner: Vec<Option<usize>> = vec![None; rows];
    let mut assignment: Vec<Option<usize>> = vec![None; p];
    for c in 0..p {
        let mut visited = vec![false; rows];
        if !kuhn(
            c,
            &compatible,
            &mut row_owner,
            &mut assignment,
            &mut visited,
        ) {
            return ColumnRepairOutcome::Unrepairable {
                reason: format!("matching failed at product term {c}"),
            };
        }
    }
    let row_of_cube: Vec<usize> = assignment
        .into_iter()
        .map(|a| a.expect("matched"))
        .collect();

    // Build the physical configuration.
    let o = cover.n_outputs();
    let mut in_controls = vec![vec![InputPolarity::Drop; cols]; rows];
    let mut out_controls = vec![vec![InputPolarity::Drop; rows]; o];
    for (c, cube) in cover.iter().enumerate() {
        let r = row_of_cube[c];
        for (i, &col) in column_of_input.iter().enumerate() {
            in_controls[r][col] = match cube.input(i) {
                Tri::One => InputPolarity::Invert,
                Tri::Zero => InputPolarity::Pass,
                Tri::DontCare => InputPolarity::Drop,
            };
        }
        for (j, ctrl) in out_controls.iter_mut().enumerate() {
            if cube.has_output(j) {
                ctrl[r] = InputPolarity::Pass;
            }
        }
    }
    ColumnRepairOutcome::Repaired(ColumnRepairedPla {
        pla: GnorPla::from_parts(
            GnorPlane::from_controls(in_controls),
            GnorPlane::from_controls(out_controls),
            vec![true; o],
        ),
        column_of_input,
        row_of_cube,
    })
}

fn kuhn(
    c: usize,
    compatible: &[Vec<usize>],
    row_owner: &mut Vec<Option<usize>>,
    assignment: &mut Vec<Option<usize>>,
    visited: &mut Vec<bool>,
) -> bool {
    for &r in &compatible[c] {
        if visited[r] {
            continue;
        }
        visited[r] = true;
        let free = match row_owner[r] {
            None => true,
            Some(other) => kuhn(other, compatible, row_owner, assignment, visited),
        };
        if free {
            row_owner[r] = Some(c);
            assignment[c] = Some(r);
            return true;
        }
    }
    false
}

/// Fault-simulate a column-repaired PLA against its cover (exhaustive up
/// to [`logic::eval::EXHAUSTIVE_LIMIT`] logical inputs) — the
/// repair-then-re-inject round trip: applying the *same* defect map to
/// the repaired configuration must reproduce the cover's original truth
/// table. Sweeps through the logical [`RepairedView`] backend, 64+ lanes
/// per `eval_words` call.
pub fn verify_column_repair(
    cover: &Cover,
    repaired: &ColumnRepairedPla,
    defects: &DefectMap,
) -> bool {
    let n = cover.n_inputs().min(logic::eval::EXHAUSTIVE_LIMIT);
    ambipla_core::sim::equivalent_to_cover(&repaired.faulty_view(defects), cover, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{repair, RepairOutcome};

    fn xor() -> Cover {
        Cover::parse("10 1\n01 1", 2, 1).expect("valid cover")
    }

    #[test]
    fn clean_array_maps_identity_like() {
        let f = xor();
        let defects = DefectMap::clean(3, 3, 1); // 1 spare row, 1 spare col
        match repair_with_columns(&f, &defects) {
            ColumnRepairOutcome::Repaired(r) => {
                assert!(verify_column_repair(&f, &r, &defects));
                // All logical inputs mapped to distinct columns.
                let mut cols = r.column_of_input.clone();
                cols.sort_unstable();
                cols.dedup();
                assert_eq!(cols.len(), 2);
            }
            ColumnRepairOutcome::Unrepairable { reason } => panic!("{reason}"),
        }
    }

    #[test]
    fn dead_column_is_bypassed() {
        // Column 0 stuck-off in every row: spare column must take over.
        let f = xor();
        let mut defects = DefectMap::clean(2, 3, 1); // no spare rows, 1 spare col
        for r in 0..2 {
            defects.set_input_defect(r, 0, DefectKind::StuckOff);
        }
        match repair_with_columns(&f, &defects) {
            ColumnRepairOutcome::Repaired(r) => {
                assert!(!r.column_of_input.contains(&0), "dead column used");
                assert!(verify_column_repair(&f, &r, &defects));
            }
            ColumnRepairOutcome::Unrepairable { reason } => panic!("{reason}"),
        }
    }

    #[test]
    fn row_only_repair_fails_where_columns_succeed() {
        // Same dead column, but the row-only repairer has no escape: both
        // cubes need both inputs, and every row's column-0 device is dead.
        let f = xor();
        let mut row_only = DefectMap::clean(4, 2, 1); // spare rows only
        for r in 0..4 {
            row_only.set_input_defect(r, 0, DefectKind::StuckOff);
        }
        assert!(matches!(
            repair(&f, &row_only),
            RepairOutcome::Unrepairable { .. }
        ));
        // With one spare column the 2D repairer recovers.
        let mut with_col = DefectMap::clean(4, 3, 1);
        for r in 0..4 {
            with_col.set_input_defect(r, 0, DefectKind::StuckOff);
        }
        assert!(repair_with_columns(&f, &with_col).is_repaired());
    }

    #[test]
    fn stuck_on_rows_still_need_row_spares() {
        let f = xor();
        let mut defects = DefectMap::clean(3, 4, 1); // 1 spare row, 2 spare cols
        defects.set_input_defect(0, 3, DefectKind::StuckOn); // kills row 0 even on a spare col
        match repair_with_columns(&f, &defects) {
            ColumnRepairOutcome::Repaired(r) => {
                assert!(!r.row_of_cube.contains(&0), "stuck-on row used");
                assert!(verify_column_repair(&f, &r, &defects));
            }
            ColumnRepairOutcome::Unrepairable { reason } => panic!("{reason}"),
        }
    }

    #[test]
    fn monte_carlo_verified_repairs() {
        let f = Cover::parse("110 01\n101 01\n011 11\n100 10", 3, 2).unwrap();
        let mut repaired_count = 0;
        for seed in 0..30u64 {
            let defects = DefectMap::sample(6, 5, 2, 0.06, 0.9, seed * 7 + 1);
            if let ColumnRepairOutcome::Repaired(r) = repair_with_columns(&f, &defects) {
                repaired_count += 1;
                assert!(
                    verify_column_repair(&f, &r, &defects),
                    "seed {seed}: repair verified false"
                );
            }
        }
        assert!(repaired_count > 15, "2D repair should usually succeed");
    }

    #[test]
    fn unrepairable_when_everything_is_dead() {
        let f = xor();
        let defects = DefectMap::sample(2, 2, 1, 1.0, 0.5, 1);
        assert!(!repair_with_columns(&f, &defects).is_repaired());
    }
}
