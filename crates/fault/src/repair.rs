//! Spare-row repair by bipartite matching.
//!
//! The GNOR array is perfectly regular: *any* product term can live on
//! *any* physical row (the Fig. 3 protocol programs every device
//! individually). Repair therefore reduces to a bipartite matching between
//! the cubes of the cover and the defect-compatible physical rows of an
//! array fabricated with spare rows:
//!
//! * a row with a **stuck-on** input device is unusable (its product line
//!   is constant 0);
//! * a row with **stuck-off** input devices can host any cube that drops
//!   those columns anyway;
//! * a **stuck-off** output device forbids cubes that drive that output
//!   from that row;
//! * a **stuck-on** output device anywhere on an output line pins the whole
//!   line to constant 0 — unrepairable by row re-assignment.
//!
//! Matching uses Kuhn's augmenting-path algorithm (the covers are small);
//! the repaired configuration is rebuilt as a full [`GnorPla`] over the
//! physical rows and re-verified by fault simulation in the tests.

use crate::defect::{DefectKind, DefectMap};
use ambipla_core::{GnorPla, GnorPlane, InputPolarity};
use logic::{Cover, Tri};

/// Result of a repair attempt.
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// A defect-avoiding assignment was found.
    Repaired {
        /// The reconfigured PLA over all physical rows (unused rows left
        /// unprogrammed).
        pla: GnorPla,
        /// `assignment[cube] = physical row`.
        assignment: Vec<usize>,
        /// Physical rows left unused (available spares).
        spares_left: usize,
    },
    /// No assignment exists.
    Unrepairable {
        /// Human-readable reason (first obstruction found).
        reason: String,
    },
}

impl RepairOutcome {
    /// True if the array was repaired.
    pub fn is_repaired(&self) -> bool {
        matches!(self, RepairOutcome::Repaired { .. })
    }
}

/// Attempt to map `cover` onto the defective array described by `defects`.
///
/// The defect map's row count defines the physical array (cover products +
/// spares).
///
/// # Panics
///
/// Panics if the defect map has fewer rows than the cover has cubes, or
/// mismatched input/output counts.
pub fn repair(cover: &Cover, defects: &DefectMap) -> RepairOutcome {
    let p = cover.len();
    let rows = defects.rows();
    assert!(rows >= p, "need at least as many physical rows as cubes");
    assert_eq!(defects.inputs(), cover.n_inputs(), "input count mismatch");
    assert_eq!(
        defects.outputs(),
        cover.n_outputs(),
        "output count mismatch"
    );

    // Global obstruction: a stuck-on output device pins its line low.
    for j in 0..cover.n_outputs() {
        if defects.output_line_has_stuck_on(j) {
            return RepairOutcome::Unrepairable {
                reason: format!("output line {j} has a stuck-on device"),
            };
        }
    }

    // Compatibility lists.
    let compatible: Vec<Vec<usize>> = (0..p)
        .map(|c| {
            (0..rows)
                .filter(|&r| row_fits_cube(cover, c, defects, r))
                .collect()
        })
        .collect();
    if let Some(c) = compatible.iter().position(|v| v.is_empty()) {
        return RepairOutcome::Unrepairable {
            reason: format!("no usable physical row for product term {c}"),
        };
    }

    // Kuhn's matching: cube → row.
    let mut row_owner: Vec<Option<usize>> = vec![None; rows];
    let mut assignment: Vec<Option<usize>> = vec![None; p];
    for c in 0..p {
        let mut visited = vec![false; rows];
        if !augment(
            c,
            &compatible,
            &mut row_owner,
            &mut assignment,
            &mut visited,
        ) {
            return RepairOutcome::Unrepairable {
                reason: format!("matching failed at product term {c}"),
            };
        }
    }
    let assignment: Vec<usize> = assignment
        .into_iter()
        .map(|a| a.expect("matched"))
        .collect();

    // Build the repaired configuration over the physical rows.
    let n = cover.n_inputs();
    let o = cover.n_outputs();
    let mut in_controls = vec![vec![InputPolarity::Drop; n]; rows];
    let mut out_controls = vec![vec![InputPolarity::Drop; rows]; o];
    for (c, cube) in cover.iter().enumerate() {
        let r = assignment[c];
        for (i, ctrl) in in_controls[r].iter_mut().enumerate() {
            *ctrl = match cube.input(i) {
                Tri::One => InputPolarity::Invert,
                Tri::Zero => InputPolarity::Pass,
                Tri::DontCare => InputPolarity::Drop,
            };
        }
        for (j, ctrl) in out_controls.iter_mut().enumerate() {
            if cube.has_output(j) {
                ctrl[r] = InputPolarity::Pass;
            }
        }
    }
    let pla = GnorPla::from_parts(
        GnorPlane::from_controls(in_controls),
        GnorPlane::from_controls(out_controls),
        vec![true; o],
    );
    RepairOutcome::Repaired {
        pla,
        spares_left: rows - p,
        assignment,
    }
}

/// Can cube `c` of `cover` live on physical row `r`?
fn row_fits_cube(cover: &Cover, c: usize, defects: &DefectMap, r: usize) -> bool {
    if defects.row_has_stuck_on(r) {
        return false;
    }
    let cube = &cover.cubes()[c];
    for i in 0..cover.n_inputs() {
        if defects.input_defect(r, i) == Some(DefectKind::StuckOff)
            && cube.input(i) != Tri::DontCare
        {
            return false;
        }
    }
    for j in cube.outputs() {
        if defects.output_defect(j, r) == Some(DefectKind::StuckOff) {
            return false;
        }
    }
    true
}

fn augment(
    c: usize,
    compatible: &[Vec<usize>],
    row_owner: &mut Vec<Option<usize>>,
    assignment: &mut Vec<Option<usize>>,
    visited: &mut Vec<bool>,
) -> bool {
    for &r in &compatible[c] {
        if visited[r] {
            continue;
        }
        visited[r] = true;
        let free = match row_owner[r] {
            None => true,
            Some(other) => augment(other, compatible, row_owner, assignment, visited),
        };
        if free {
            row_owner[r] = Some(c);
            assignment[c] = Some(r);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultyGnorPla;

    fn xor() -> Cover {
        Cover::parse("10 1\n01 1", 2, 1).expect("valid cover")
    }

    #[test]
    fn clean_array_repairs_trivially() {
        let f = xor();
        let defects = DefectMap::clean(3, 2, 1); // one spare
        match repair(&f, &defects) {
            RepairOutcome::Repaired {
                pla, spares_left, ..
            } => {
                assert_eq!(spares_left, 1);
                let faulty = FaultyGnorPla::new(pla, defects);
                assert!(faulty.implements(&f));
            }
            RepairOutcome::Unrepairable { reason } => panic!("unrepairable: {reason}"),
        }
    }

    #[test]
    fn stuck_on_row_is_avoided_via_spare() {
        let f = xor();
        let mut defects = DefectMap::clean(3, 2, 1);
        defects.set_input_defect(0, 0, DefectKind::StuckOn); // row 0 dead
        match repair(&f, &defects) {
            RepairOutcome::Repaired {
                pla, assignment, ..
            } => {
                assert!(!assignment.contains(&0), "dead row must be avoided");
                let faulty = FaultyGnorPla::new(pla, defects);
                assert!(faulty.implements(&f));
            }
            RepairOutcome::Unrepairable { reason } => panic!("unrepairable: {reason}"),
        }
    }

    #[test]
    fn stuck_off_row_hosts_a_compatible_cube() {
        // f = x0 · x̄1 (needs both cols) + x2-ish… use 3 inputs:
        // cube A = x0 x1 x2 (all literals), cube B = x0 (drops cols 1, 2).
        let f = Cover::parse("111 1\n1-- 1", 3, 1).expect("valid cover");
        let mut defects = DefectMap::clean(2, 3, 1);
        // Row 0 column 1 stuck-off: cube A cannot live there, cube B can.
        defects.set_input_defect(0, 1, DefectKind::StuckOff);
        match repair(&f, &defects) {
            RepairOutcome::Repaired {
                pla, assignment, ..
            } => {
                assert_eq!(assignment[0], 1, "cube A must take the clean row");
                assert_eq!(assignment[1], 0, "cube B tolerates the stuck-off");
                let faulty = FaultyGnorPla::new(pla, defects);
                assert!(faulty.implements(&f));
            }
            RepairOutcome::Unrepairable { reason } => panic!("unrepairable: {reason}"),
        }
    }

    #[test]
    fn stuck_on_output_line_is_unrepairable() {
        let f = xor();
        let mut defects = DefectMap::clean(3, 2, 1);
        defects.set_output_defect(0, 2, DefectKind::StuckOn);
        assert!(!repair(&f, &defects).is_repaired());
    }

    #[test]
    fn too_many_dead_rows_is_unrepairable() {
        let f = xor();
        let mut defects = DefectMap::clean(2, 2, 1); // no spares
        defects.set_input_defect(0, 0, DefectKind::StuckOn);
        match repair(&f, &defects) {
            RepairOutcome::Unrepairable { reason } => {
                assert!(reason.contains("product term") || reason.contains("matching"));
            }
            RepairOutcome::Repaired { .. } => panic!("cannot repair without spares"),
        }
    }

    #[test]
    fn stuck_off_output_device_forces_other_row() {
        let f = xor();
        let mut defects = DefectMap::clean(3, 2, 1);
        // Output device of row 0 broken: both cubes drive output 0, so
        // neither may use row 0.
        defects.set_output_defect(0, 0, DefectKind::StuckOff);
        match repair(&f, &defects) {
            RepairOutcome::Repaired {
                pla, assignment, ..
            } => {
                assert!(!assignment.contains(&0));
                let faulty = FaultyGnorPla::new(pla, defects);
                assert!(faulty.implements(&f));
            }
            RepairOutcome::Unrepairable { reason } => panic!("unrepairable: {reason}"),
        }
    }

    #[test]
    fn matching_handles_contention() {
        // Two cubes, two usable rows, but cube A fits only row 1 while cube
        // B fits both: Kuhn must push B to row 0.
        let f = Cover::parse("11 1\n1- 1", 2, 1).expect("valid cover");
        let mut defects = DefectMap::clean(2, 2, 1);
        defects.set_input_defect(0, 1, DefectKind::StuckOff); // A can't use row 0
        match repair(&f, &defects) {
            RepairOutcome::Repaired {
                assignment, pla, ..
            } => {
                assert_eq!(assignment, vec![1, 0]);
                let faulty = FaultyGnorPla::new(pla, defects);
                assert!(faulty.implements(&f));
            }
            RepairOutcome::Unrepairable { reason } => panic!("unrepairable: {reason}"),
        }
    }

    #[test]
    fn unused_spare_rows_stay_silent() {
        let f = xor();
        let defects = DefectMap::clean(5, 2, 1); // three spares
        if let RepairOutcome::Repaired { pla, .. } = repair(&f, &defects) {
            let faulty = FaultyGnorPla::new(pla, defects);
            assert!(faulty.implements(&f), "spare rows must not disturb logic");
        } else {
            panic!("clean array must repair");
        }
    }
}
