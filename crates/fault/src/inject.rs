//! Fault simulation: what a defective GNOR PLA actually computes.
//!
//! The dynamic-logic semantics make defect effects crisp:
//!
//! * a **stuck-off** crosspoint never discharges its line — it behaves
//!   exactly like a `V0`-programmed (dropped) device;
//! * a **stuck-on** crosspoint discharges its line on *every* evaluate
//!   phase — the line is constant 0 regardless of the inputs (and an
//!   inverting output driver then publishes constant 1).

use crate::defect::{DefectKind, DefectMap};
use ambipla_core::sim;
use ambipla_core::{GnorPla, InputPolarity, Simulator};
use logic::Cover;
use std::sync::Arc;

/// A GNOR PLA paired with its defect map.
///
/// The PLA is held behind an [`Arc`], so cloning a `FaultyGnorPla` — or
/// deriving a new one from the same array with
/// [`with_defects`](FaultyGnorPla::with_defects) — copies only the defect
/// map, never the array configuration. That is what makes defect
/// injection / repair churn cheap enough to construct a fresh backend per
/// hot swap in a serving loop.
///
/// # Example
///
/// ```
/// use ambipla_core::GnorPla;
/// use fault::{DefectKind, DefectMap, FaultyGnorPla};
/// use logic::Cover;
///
/// let f = Cover::parse("10 1\n01 1", 2, 1).unwrap();
/// let pla = GnorPla::from_cover(&f);
/// let mut defects = DefectMap::clean(2, 2, 1);
/// defects.set_input_defect(0, 0, DefectKind::StuckOff);
/// let faulty = FaultyGnorPla::new(pla, defects);
/// // Row 0 lost its x0 literal: the faulty PLA no longer matches XOR.
/// assert!(!faulty.implements(&f));
/// // A defect-map mutation shares the array: no PLA copy.
/// let healed = faulty.with_defects(DefectMap::clean(2, 2, 1));
/// assert!(healed.implements(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultyGnorPla {
    pla: Arc<GnorPla>,
    defects: DefectMap,
}

impl FaultyGnorPla {
    /// Pair a PLA with a defect map.
    ///
    /// # Panics
    ///
    /// Panics if the map dimensions do not match the PLA.
    pub fn new(pla: GnorPla, defects: DefectMap) -> FaultyGnorPla {
        FaultyGnorPla::from_shared(Arc::new(pla), defects)
    }

    /// Pair an already-shared PLA with a defect map — the zero-copy
    /// constructor for callers that stamp out many faulty twins of one
    /// array (Monte-Carlo trials, hot-swap mutators).
    ///
    /// # Panics
    ///
    /// Panics if the map dimensions do not match the PLA.
    pub fn from_shared(pla: Arc<GnorPla>, defects: DefectMap) -> FaultyGnorPla {
        let d = pla.dimensions();
        assert_eq!(defects.rows(), d.products, "defect map rows mismatch");
        assert_eq!(defects.inputs(), d.inputs, "defect map inputs mismatch");
        assert_eq!(defects.outputs(), d.outputs, "defect map outputs mismatch");
        FaultyGnorPla { pla, defects }
    }

    /// The same array under a different defect map, sharing the PLA
    /// allocation — the cheap way to model a device whose defect map just
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if the map dimensions do not match the PLA.
    pub fn with_defects(&self, defects: DefectMap) -> FaultyGnorPla {
        FaultyGnorPla::from_shared(Arc::clone(&self.pla), defects)
    }

    /// The underlying (intended) PLA.
    pub fn pla(&self) -> &GnorPla {
        &self.pla
    }

    /// The shared handle to the underlying PLA (clone it to build derived
    /// twins without copying the array).
    pub fn shared_pla(&self) -> &Arc<GnorPla> {
        &self.pla
    }

    /// The defect map.
    pub fn defects(&self) -> &DefectMap {
        &self.defects
    }

    /// True if the defective array still implements `cover` (exhaustive up
    /// to [`logic::eval::EXHAUSTIVE_LIMIT`] inputs). This is the inner loop
    /// of every yield Monte-Carlo trial, so it sweeps the space through the
    /// 64-lane [`Simulator`] engine.
    pub fn implements(&self, cover: &Cover) -> bool {
        let n = cover.n_inputs().min(logic::eval::EXHAUSTIVE_LIMIT);
        sim::equivalent_to_cover(self, cover, n)
    }
}

impl Simulator for FaultyGnorPla {
    fn n_inputs(&self) -> usize {
        self.pla.dimensions().inputs
    }

    fn n_outputs(&self) -> usize {
        self.pla.dimensions().outputs
    }

    fn eval_words(&self, inputs: &[u64], out: &mut [u64], words: usize) {
        let dims = self.pla.dimensions();
        assert!(words > 0, "at least one lane word per signal");
        assert_eq!(inputs.len(), dims.inputs * words, "input arity mismatch");
        assert_eq!(
            out.len(),
            dims.outputs * words,
            "output buffer size mismatch"
        );
        // Each (row, column) defect is resolved once per call, so wider
        // blocks amortize the defect-map lookups over words × 64 lanes.
        let mut products = vec![0u64; dims.products * words];
        for (r, prow) in products.chunks_exact_mut(words).enumerate() {
            let gate = self.pla.input_plane().gate(r);
            for i in 0..dims.inputs {
                let x = &inputs[i * words..(i + 1) * words];
                match self.defects.input_defect(r, i) {
                    Some(DefectKind::StuckOn) => prow.fill(!0),
                    Some(DefectKind::StuckOff) => {}
                    None => match gate.control(i) {
                        InputPolarity::Pass => {
                            for (p, &xv) in prow.iter_mut().zip(x) {
                                *p |= xv;
                            }
                        }
                        InputPolarity::Invert => {
                            for (p, &xv) in prow.iter_mut().zip(x) {
                                *p |= !xv;
                            }
                        }
                        InputPolarity::Drop => {}
                    },
                }
            }
            for p in prow.iter_mut() {
                *p = !*p;
            }
        }
        out.fill(0);
        for (j, orow) in out.chunks_exact_mut(words).enumerate() {
            let gate = self.pla.output_plane().gate(j);
            for (r, p) in products.chunks_exact(words).enumerate() {
                match self.defects.output_defect(j, r) {
                    Some(DefectKind::StuckOn) => orow.fill(!0),
                    Some(DefectKind::StuckOff) => {}
                    None => match gate.control(r) {
                        InputPolarity::Pass => {
                            for (o, &pv) in orow.iter_mut().zip(p) {
                                *o |= pv;
                            }
                        }
                        InputPolarity::Invert => {
                            for (o, &pv) in orow.iter_mut().zip(p) {
                                *o |= !pv;
                            }
                        }
                        InputPolarity::Drop => {}
                    },
                }
            }
            let inv = self.pla.inverting_outputs()[j];
            for o in orow.iter_mut() {
                // NOR of the (possibly defective) discharge, then the
                // driver polarity.
                *o = if inv { *o } else { !*o };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_pla() -> (Cover, GnorPla) {
        let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        (f, pla)
    }

    #[test]
    fn clean_map_matches_ideal() {
        let (f, pla) = xor_pla();
        let faulty = FaultyGnorPla::new(pla.clone(), DefectMap::clean(2, 2, 1));
        for bits in 0..4u64 {
            assert_eq!(faulty.simulate_bits(bits), pla.simulate_bits(bits));
        }
        assert!(faulty.implements(&f));
    }

    #[test]
    fn stuck_on_in_row_kills_the_product() {
        let (f, pla) = xor_pla();
        let mut d = DefectMap::clean(2, 2, 1);
        d.set_input_defect(0, 1, DefectKind::StuckOn);
        let faulty = FaultyGnorPla::new(pla, d);
        // Row 0 (x0·x̄1) is gone: 10 no longer asserts the output.
        assert!(!faulty.simulate_bits(0b01)[0]);
        // Row 1 still works.
        assert!(faulty.simulate_bits(0b10)[0]);
        assert!(!faulty.implements(&f));
    }

    #[test]
    fn stuck_off_widens_the_product() {
        let (f, pla) = xor_pla();
        let mut d = DefectMap::clean(2, 2, 1);
        // Row 0 implements x0·x̄1 via controls (Invert, Pass); killing the
        // x̄1 device widens it to x0.
        d.set_input_defect(0, 1, DefectKind::StuckOff);
        let faulty = FaultyGnorPla::new(pla, d);
        assert!(faulty.simulate_bits(0b11)[0], "11 now wrongly covered");
        assert!(!faulty.implements(&f));
    }

    #[test]
    fn stuck_on_output_line_is_constant_one() {
        let (f, pla) = xor_pla();
        let mut d = DefectMap::clean(2, 2, 1);
        d.set_output_defect(0, 0, DefectKind::StuckOn);
        let faulty = FaultyGnorPla::new(pla, d);
        for bits in 0..4u64 {
            assert!(faulty.simulate_bits(bits)[0], "line must be stuck at 1");
        }
        let _ = f;
    }

    #[test]
    fn stuck_off_output_disconnects_the_product() {
        let (f, pla) = xor_pla();
        let mut d = DefectMap::clean(2, 2, 1);
        d.set_output_defect(0, 1, DefectKind::StuckOff);
        let faulty = FaultyGnorPla::new(pla, d);
        assert!(!faulty.simulate_bits(0b10)[0], "lost the x̄0·x1 minterm");
        assert!(faulty.simulate_bits(0b01)[0]);
        assert!(!faulty.implements(&f));
    }

    #[test]
    fn defect_on_dropped_position_is_harmless() {
        // f = x0 (1 literal, 1 dropped column): stuck-off on the dropped
        // column changes nothing.
        let f = Cover::parse("1- 1", 2, 1).expect("valid cover");
        let pla = GnorPla::from_cover(&f);
        let mut d = DefectMap::clean(1, 2, 1);
        d.set_input_defect(0, 1, DefectKind::StuckOff);
        let faulty = FaultyGnorPla::new(pla, d);
        assert!(faulty.implements(&f));
    }

    #[test]
    #[should_panic(expected = "defect map rows mismatch")]
    fn dimension_mismatch_panics() {
        let (_, pla) = xor_pla();
        let _ = FaultyGnorPla::new(pla, DefectMap::clean(3, 2, 1));
    }

    #[test]
    fn with_defects_shares_the_array() {
        let (f, pla) = xor_pla();
        let faulty = FaultyGnorPla::new(pla, DefectMap::clean(2, 2, 1));
        let mut d = DefectMap::clean(2, 2, 1);
        d.set_input_defect(0, 1, DefectKind::StuckOn);
        let twin = faulty.with_defects(d);
        // Same allocation, different function.
        assert!(Arc::ptr_eq(faulty.shared_pla(), twin.shared_pla()));
        assert!(faulty.implements(&f));
        assert!(!twin.implements(&f));
    }

    #[test]
    #[should_panic(expected = "defect map inputs mismatch")]
    fn with_defects_still_checks_dimensions() {
        let (_, pla) = xor_pla();
        let faulty = FaultyGnorPla::new(pla, DefectMap::clean(2, 2, 1));
        let _ = faulty.with_defects(DefectMap::clean(2, 3, 1));
    }
}
