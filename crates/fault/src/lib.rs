//! Defect injection, fault-tolerant mapping and yield analysis for GNOR
//! PLAs.
//!
//! The paper's Section 5 closes with the observation that "a fault-tolerant
//! design approach for PLAs [Schmid & Leblebici] makes use of the regular
//! architecture and is expected to improve the yield of the unreliable
//! devices making up the PLA". This crate implements and measures that
//! claim on the GNOR PLA:
//!
//! * [`defect`] — stuck-off / stuck-on crosspoint defects and seeded
//!   Bernoulli defect maps,
//! * [`inject`] — fault simulation of a defective GNOR PLA (what the array
//!   actually computes given its defect map),
//! * [`mod@repair`] — spare-row repair: product terms are re-assigned to
//!   defect-compatible physical rows by bipartite matching, exploiting the
//!   array's regularity (any cube can live on any row),
//! * [`yield_analysis`] — Monte-Carlo yield curves with and without
//!   repair, sequential or sharded bit-identically across a deterministic
//!   worker pool (`ambipla_core::pool`).

pub mod bist;
pub mod column_repair;
pub mod defect;
pub mod inject;
pub mod repair;
pub mod testgen;
pub mod yield_analysis;

pub use bist::{bist_sequence, measure_coverage, BistCoverage};
pub use column_repair::{
    repair_with_columns, verify_column_repair, ColumnRepairOutcome, ColumnRepairedPla, RepairedView,
};
pub use defect::{DefectKind, DefectMap};
pub use inject::FaultyGnorPla;
pub use repair::{repair, RepairOutcome};
pub use testgen::{enumerate_faults, generate_tests, verify_tests, SingleFault, TestSet};
pub use yield_analysis::{
    yield_curve, yield_curve_biased, yield_curve_biased_parallel, yield_curve_parallel, YieldPoint,
};
