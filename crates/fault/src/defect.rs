//! Crosspoint defect models.
//!
//! Immature nanotube processes suffer two dominant crosspoint failure
//! modes, both modelled here at the behavioural level:
//!
//! * **stuck-off** — the device never conducts (missing/metallic-removed
//!   tube, open contact): the crosspoint behaves as if programmed to `V0`;
//! * **stuck-on** — the device conducts regardless of CG and PG (metallic
//!   tube that survived burn-in, shorted contact): during every evaluate
//!   phase it discharges its line unconditionally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two crosspoint failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Device never conducts (acts like a dropped input).
    StuckOff,
    /// Device always conducts (discharges its line every evaluate phase).
    StuckOn,
}

/// Defect map of a two-plane PLA: one optional defect per crosspoint.
///
/// # Example
///
/// ```
/// use fault::{DefectKind, DefectMap};
///
/// let mut map = DefectMap::clean(4, 3, 2);
/// map.set_input_defect(1, 2, DefectKind::StuckOn);
/// assert!(map.row_has_stuck_on(1));
/// assert_eq!(map.defect_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectMap {
    rows: usize,
    inputs: usize,
    outputs: usize,
    /// `rows × inputs`, row-major.
    input_plane: Vec<Option<DefectKind>>,
    /// `outputs × rows`, output-major.
    output_plane: Vec<Option<DefectKind>>,
}

impl DefectMap {
    /// A defect-free map for a PLA with `rows` physical product rows,
    /// `inputs` input columns and `outputs` output lines.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn clean(rows: usize, inputs: usize, outputs: usize) -> DefectMap {
        assert!(rows > 0 && inputs > 0 && outputs > 0, "dimensions non-zero");
        DefectMap {
            rows,
            inputs,
            outputs,
            input_plane: vec![None; rows * inputs],
            output_plane: vec![None; outputs * rows],
        }
    }

    /// Sample a Bernoulli defect map: every crosspoint independently fails
    /// with probability `rate`; failures are stuck-off with probability
    /// `stuck_off_bias` (metallic-tube processes skew towards opens).
    ///
    /// # Panics
    ///
    /// Panics unless `rate` and `stuck_off_bias` are in `[0, 1]`.
    pub fn sample(
        rows: usize,
        inputs: usize,
        outputs: usize,
        rate: f64,
        stuck_off_bias: f64,
        seed: u64,
    ) -> DefectMap {
        assert!((0.0..=1.0).contains(&rate), "rate in [0,1]");
        assert!((0.0..=1.0).contains(&stuck_off_bias), "bias in [0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = DefectMap::clean(rows, inputs, outputs);
        for cell in map
            .input_plane
            .iter_mut()
            .chain(map.output_plane.iter_mut())
        {
            if rng.gen_bool(rate) {
                *cell = Some(if rng.gen_bool(stuck_off_bias) {
                    DefectKind::StuckOff
                } else {
                    DefectKind::StuckOn
                });
            }
        }
        map
    }

    /// Physical product rows covered by the map.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input columns covered by the map.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output lines covered by the map.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Defect at input-plane crosspoint `(row, input)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn input_defect(&self, row: usize, input: usize) -> Option<DefectKind> {
        assert!(
            row < self.rows && input < self.inputs,
            "index out of bounds"
        );
        self.input_plane[row * self.inputs + input]
    }

    /// Defect at output-plane crosspoint `(output, row)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn output_defect(&self, output: usize, row: usize) -> Option<DefectKind> {
        assert!(
            output < self.outputs && row < self.rows,
            "index out of bounds"
        );
        self.output_plane[output * self.rows + row]
    }

    /// Place a defect at input-plane crosspoint `(row, input)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn set_input_defect(&mut self, row: usize, input: usize, kind: DefectKind) {
        assert!(
            row < self.rows && input < self.inputs,
            "index out of bounds"
        );
        self.input_plane[row * self.inputs + input] = Some(kind);
    }

    /// Place a defect at output-plane crosspoint `(output, row)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn set_output_defect(&mut self, output: usize, row: usize, kind: DefectKind) {
        assert!(
            output < self.outputs && row < self.rows,
            "index out of bounds"
        );
        self.output_plane[output * self.rows + row] = Some(kind);
    }

    /// Total number of defective crosspoints.
    pub fn defect_count(&self) -> usize {
        self.input_plane
            .iter()
            .chain(self.output_plane.iter())
            .filter(|d| d.is_some())
            .count()
    }

    /// True if input-plane row `row` contains a stuck-on device (which
    /// forces its product line to constant 0).
    pub fn row_has_stuck_on(&self, row: usize) -> bool {
        (0..self.inputs).any(|i| self.input_defect(row, i) == Some(DefectKind::StuckOn))
    }

    /// True if output line `output` contains a stuck-on device anywhere
    /// (which forces the whole line to constant 0 — unrepairable by row
    /// re-assignment).
    pub fn output_line_has_stuck_on(&self, output: usize) -> bool {
        (0..self.rows).any(|r| self.output_defect(output, r) == Some(DefectKind::StuckOn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_map_has_no_defects() {
        let m = DefectMap::clean(4, 3, 2);
        assert_eq!(m.defect_count(), 0);
        assert!(!m.row_has_stuck_on(0));
        assert!(!m.output_line_has_stuck_on(1));
    }

    #[test]
    fn sampling_rate_zero_is_clean() {
        let m = DefectMap::sample(10, 10, 4, 0.0, 0.5, 1);
        assert_eq!(m.defect_count(), 0);
    }

    #[test]
    fn sampling_rate_one_breaks_everything() {
        let m = DefectMap::sample(5, 4, 2, 1.0, 1.0, 1);
        assert_eq!(m.defect_count(), 5 * 4 + 2 * 5);
        // Bias 1.0 → all stuck-off.
        assert!(!m.row_has_stuck_on(0));
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = DefectMap::sample(8, 8, 3, 0.1, 0.7, 99);
        let b = DefectMap::sample(8, 8, 3, 0.1, 0.7, 99);
        assert_eq!(a, b);
        assert_ne!(a, DefectMap::sample(8, 8, 3, 0.1, 0.7, 100));
    }

    #[test]
    fn sampled_rate_is_plausible() {
        let m = DefectMap::sample(50, 20, 10, 0.1, 0.7, 5);
        let cells = 50 * 20 + 10 * 50;
        let rate = m.defect_count() as f64 / cells as f64;
        assert!((rate - 0.1).abs() < 0.03, "empirical rate {rate}");
    }

    #[test]
    fn stuck_on_detection() {
        let mut m = DefectMap::clean(3, 3, 2);
        m.set_input_defect(1, 2, DefectKind::StuckOn);
        m.set_output_defect(0, 2, DefectKind::StuckOn);
        assert!(m.row_has_stuck_on(1));
        assert!(!m.row_has_stuck_on(0));
        assert!(m.output_line_has_stuck_on(0));
        assert!(!m.output_line_has_stuck_on(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let _ = DefectMap::clean(2, 2, 2).input_defect(2, 0);
    }
}
