//! Built-in self-test (BIST) pattern sequences for GNOR PLAs.
//!
//! ATPG ([`crate::testgen`]) needs fault simulation and a pattern memory;
//! on-chip self-test prefers **algorithmically generated** sequences a tiny
//! controller can produce. This module provides the classic PLA-friendly
//! sequence — all-zeros, all-ones, walking ones and walking zeros — plus a
//! coverage evaluator so the quality gap to full ATPG is measurable rather
//! than assumed.

use crate::defect::DefectMap;
use crate::inject::FaultyGnorPla;
use crate::testgen::{enumerate_faults, SingleFault, TESTGEN_INPUT_LIMIT};
use ambipla_core::{GnorPla, Simulator};
use logic::Cover;

/// The deterministic BIST sequence over `n` inputs: `0…0`, `1…1`, the `n`
/// walking-ones and the `n` walking-zeros (2n + 2 patterns).
pub fn bist_sequence(n: usize) -> Vec<u64> {
    assert!((1..=63).contains(&n), "1..=63 inputs");
    let mask = (1u64 << n) - 1;
    let mut v = Vec::with_capacity(2 * n + 2);
    v.push(0);
    v.push(mask);
    for i in 0..n {
        v.push(1u64 << i);
        v.push(mask ^ (1u64 << i));
    }
    v
}

/// Coverage of a pattern sequence against all single crosspoint faults of
/// the PLA implementing `cover`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BistCoverage {
    /// Detectable faults caught by the sequence.
    pub caught: usize,
    /// Total detectable faults.
    pub detectable: usize,
    /// Sequence length.
    pub patterns: usize,
}

impl BistCoverage {
    /// Fraction of detectable faults caught.
    pub fn fraction(&self) -> f64 {
        if self.detectable == 0 {
            1.0
        } else {
            self.caught as f64 / self.detectable as f64
        }
    }
}

/// Measure the fault coverage of `patterns` on the PLA of `cover`.
///
/// # Panics
///
/// Panics if the cover is empty or wider than
/// [`TESTGEN_INPUT_LIMIT`] inputs.
pub fn measure_coverage(cover: &Cover, patterns: &[u64]) -> BistCoverage {
    assert!(!cover.is_empty(), "cover must have product terms");
    let n = cover.n_inputs();
    assert!(
        n <= TESTGEN_INPUT_LIMIT,
        "coverage limited to {TESTGEN_INPUT_LIMIT} inputs"
    );
    let pla = GnorPla::from_cover(cover);
    let dims = pla.dimensions();
    let space = 1u64 << n;
    let golden: Vec<Vec<bool>> = (0..space).map(|b| pla.simulate_bits(b)).collect();

    let faults: Vec<SingleFault> = enumerate_faults(dims.products, dims.inputs, dims.outputs);
    let mut caught = 0;
    let mut detectable = 0;
    for fault in faults {
        let mut map = DefectMap::clean(dims.products, dims.inputs, dims.outputs);
        match fault {
            SingleFault::Input { row, col, kind } => map.set_input_defect(row, col, kind),
            SingleFault::Output { output, row, kind } => map.set_output_defect(output, row, kind),
        }
        let faulty = FaultyGnorPla::new(pla.clone(), map);
        let is_detectable = (0..space).any(|b| faulty.simulate_bits(b) != golden[b as usize]);
        if is_detectable {
            detectable += 1;
            if patterns
                .iter()
                .any(|&b| faulty.simulate_bits(b) != golden[b as usize])
            {
                caught += 1;
            }
        }
    }
    BistCoverage {
        caught,
        detectable,
        patterns: patterns.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::generate_tests;

    fn xor() -> Cover {
        Cover::parse("10 1\n01 1", 2, 1).expect("valid cover")
    }

    #[test]
    fn sequence_shape() {
        let s = bist_sequence(3);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 0b111);
        assert!(s.contains(&0b001) && s.contains(&0b110));
    }

    #[test]
    fn bist_covers_xor_completely() {
        // XOR over 2 inputs: the walking patterns are the whole space.
        let c = measure_coverage(&xor(), &bist_sequence(2));
        assert_eq!(c.fraction(), 1.0);
    }

    #[test]
    fn bist_close_to_atpg_on_small_plas() {
        let f = Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .unwrap();
        let bist = measure_coverage(&f, &bist_sequence(3));
        let atpg = generate_tests(&f);
        assert!(bist.fraction() > 0.6, "BIST fraction {}", bist.fraction());
        assert!(
            bist.fraction() <= atpg.coverage() + 1e-9,
            "BIST cannot beat ATPG's complete coverage"
        );
    }

    #[test]
    fn more_patterns_never_hurt() {
        let f = Cover::parse("1-0 1\n011 1\n-01 1", 3, 1).unwrap();
        let short = measure_coverage(&f, &bist_sequence(3)[..2]);
        let long = measure_coverage(&f, &bist_sequence(3));
        assert!(long.caught >= short.caught);
    }

    #[test]
    fn empty_pattern_set_catches_nothing() {
        let c = measure_coverage(&xor(), &[]);
        assert_eq!(c.caught, 0);
        assert!(c.detectable > 0);
        assert_eq!(c.fraction(), 0.0);
    }
}
