//! Monte-Carlo yield analysis of defective GNOR-PLA arrays.
//!
//! For a given per-crosspoint defect rate the simulator samples defect
//! maps, attempts spare-row [`repair`](fn@crate::repair::repair), and verifies
//! the repaired configuration by fault simulation. Three yields are
//! reported per defect rate:
//!
//! * **raw** — the array happens to work with its defects as fabricated
//!   (defects only on don't-care positions),
//! * **repaired** — a spare-row re-assignment exists and verifies,
//!
//! matching the paper's expectation that the regular, individually
//! programmable array "is expected to improve the yield of the unreliable
//! devices making up the PLA".
//!
//! Trials are embarrassingly parallel and every trial derives its RNG
//! stream from `(seed, rate, trial index)` alone, so the
//! [`yield_curve_parallel`] / [`yield_curve_biased_parallel`] entry points
//! shard trials across a deterministic
//! [`WorkerPool`] with **bit-identical**
//! results to the sequential path.

use crate::defect::DefectMap;
use crate::inject::FaultyGnorPla;
use crate::repair::{repair, RepairOutcome};
use ambipla_core::{GnorPla, WorkerPool};
use logic::Cover;

/// Yield measurements at one defect rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldPoint {
    /// Per-crosspoint defect probability.
    pub defect_rate: f64,
    /// Fraction of samples functional without any repair.
    pub raw_yield: f64,
    /// Fraction of samples functional after spare-row repair.
    pub repaired_yield: f64,
    /// Monte-Carlo sample count.
    pub trials: usize,
}

impl YieldPoint {
    /// Absolute yield improvement from repair.
    pub fn improvement(&self) -> f64 {
        self.repaired_yield - self.raw_yield
    }
}

/// Monte-Carlo yield of `cover` on an array with `spares` spare rows, at
/// each of `rates`, with `trials` samples per rate.
///
/// Stuck-off failures are biased at 70 % (open-dominated nanotube
/// processes); the RNG stream is derived from `seed` deterministically.
/// Use [`yield_curve_biased`] to control the failure-mode mix.
///
/// # Panics
///
/// Panics if the cover is empty or `trials == 0`.
pub fn yield_curve(
    cover: &Cover,
    spares: usize,
    rates: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<YieldPoint> {
    yield_curve_biased(cover, spares, rates, trials, seed, 0.7)
}

/// [`yield_curve`] with an explicit stuck-off bias (fraction of defects
/// that are opens rather than shorts).
///
/// Note the spare-row trade-off this exposes: spare rows add output-plane
/// area, so in short-dominated processes (`stuck_off_bias` low) extra
/// spares can *lower* yield — every output line crosses every physical
/// row, and one stuck-on pins it. In open-dominated processes
/// (`stuck_off_bias` near 1) spares help monotonically.
///
/// # Panics
///
/// Panics if the cover is empty, `trials == 0`, or the bias is outside
/// `[0, 1]`.
pub fn yield_curve_biased(
    cover: &Cover,
    spares: usize,
    rates: &[f64],
    trials: usize,
    seed: u64,
    stuck_off_bias: f64,
) -> Vec<YieldPoint> {
    yield_curve_biased_parallel(cover, spares, rates, trials, seed, stuck_off_bias, 1)
}

/// [`yield_curve`] sharded over `threads` workers.
///
/// Results are **bit-identical** to the single-threaded [`yield_curve`]
/// for any thread count: each trial's RNG stream is derived from
/// `(seed, rate, trial index)` alone (never from a shared generator), so
/// sharding the trial range across a deterministic
/// [`WorkerPool`] changes only wall-clock
/// time. The trials of a yield curve are embarrassingly parallel — this
/// is the ROADMAP's "parallel Monte-Carlo" entry point.
pub fn yield_curve_parallel(
    cover: &Cover,
    spares: usize,
    rates: &[f64],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<YieldPoint> {
    yield_curve_biased_parallel(cover, spares, rates, trials, seed, 0.7, threads)
}

/// Outcome of one Monte-Carlo trial: (raw array works, repaired array
/// works). Depends only on the arguments — in particular on the *global*
/// trial index `t` — which is what makes trial sharding deterministic.
fn trial_outcome(
    cover: &Cover,
    ideal: &GnorPla,
    spares: usize,
    rate: f64,
    seed: u64,
    stuck_off_bias: f64,
    t: usize,
) -> (bool, bool) {
    let p = cover.len();
    let n = cover.n_inputs();
    let o = cover.n_outputs();
    let map_seed = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((rate.to_bits() ^ t as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    // Raw array: exactly p rows, defects as fabricated.
    let raw_map = DefectMap::sample(p, n, o, rate, stuck_off_bias, map_seed);
    let raw = FaultyGnorPla::new(ideal.clone(), raw_map);
    let raw_ok = raw.implements(cover);
    // Repairable array: p + spares rows.
    let big_map = DefectMap::sample(p + spares, n, o, rate, stuck_off_bias, map_seed ^ 0xabcd);
    let rep_ok = if let RepairOutcome::Repaired { pla, .. } = repair(cover, &big_map) {
        let fixed = FaultyGnorPla::new(pla, big_map);
        fixed.implements(cover)
    } else {
        false
    };
    (raw_ok, rep_ok)
}

/// [`yield_curve_biased`] sharded over `threads` workers; bit-identical to
/// the sequential path for any thread count (see [`yield_curve_parallel`]).
///
/// # Panics
///
/// Panics if the cover is empty, `trials == 0`, `threads == 0`, or the
/// bias is outside `[0, 1]`.
pub fn yield_curve_biased_parallel(
    cover: &Cover,
    spares: usize,
    rates: &[f64],
    trials: usize,
    seed: u64,
    stuck_off_bias: f64,
    threads: usize,
) -> Vec<YieldPoint> {
    assert!((0.0..=1.0).contains(&stuck_off_bias), "bias in [0,1]");
    assert!(!cover.is_empty(), "cover must have product terms");
    assert!(trials > 0, "need at least one trial");
    let ideal = GnorPla::from_cover(cover);
    let pool = WorkerPool::new(threads);

    rates
        .iter()
        .map(|&rate| {
            let outcomes = pool.map_range(trials, |t| {
                trial_outcome(cover, &ideal, spares, rate, seed, stuck_off_bias, t)
            });
            let raw_ok = outcomes.iter().filter(|&&(raw, _)| raw).count();
            let rep_ok = outcomes.iter().filter(|&&(_, rep)| rep).count();
            YieldPoint {
                defect_rate: rate,
                raw_yield: raw_ok as f64 / trials as f64,
                repaired_yield: rep_ok as f64 / trials as f64,
                trials,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder() -> Cover {
        Cover::parse(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        )
        .expect("valid cover")
    }

    #[test]
    fn zero_defects_give_full_yield() {
        let pts = yield_curve(&adder(), 2, &[0.0], 5, 1);
        assert_eq!(pts[0].raw_yield, 1.0);
        assert_eq!(pts[0].repaired_yield, 1.0);
    }

    #[test]
    fn repair_helps_at_moderate_rates() {
        let pts = yield_curve(&adder(), 4, &[0.02], 40, 7);
        let p = pts[0];
        assert!(
            p.repaired_yield >= p.raw_yield,
            "repair cannot hurt: raw {} vs repaired {}",
            p.raw_yield,
            p.repaired_yield
        );
        assert!(
            p.improvement() > 0.0,
            "at 2% defects spares should rescue some arrays"
        );
    }

    #[test]
    fn yield_decreases_with_defect_rate() {
        let pts = yield_curve(&adder(), 2, &[0.001, 0.05, 0.3], 30, 3);
        assert!(pts[0].repaired_yield >= pts[1].repaired_yield);
        assert!(pts[1].repaired_yield >= pts[2].repaired_yield);
    }

    #[test]
    fn extreme_rate_kills_everything() {
        let pts = yield_curve(&adder(), 2, &[0.9], 10, 5);
        assert_eq!(pts[0].raw_yield, 0.0);
        assert!(pts[0].repaired_yield < 0.2);
    }

    #[test]
    fn curve_is_deterministic() {
        let a = yield_curve(&adder(), 2, &[0.02, 0.1], 15, 9);
        let b = yield_curve(&adder(), 2, &[0.02, 0.1], 15, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_curve_is_bit_identical_to_sequential() {
        // The acceptance contract of the parallel Monte-Carlo path: for the
        // same seeds, N-threaded results equal the 1-threaded baseline
        // exactly (not statistically — YieldPoint derives PartialEq over
        // the raw f64 bits of every field).
        let cover = adder();
        let rates = [0.005, 0.02, 0.08];
        let sequential = yield_curve(&cover, 3, &rates, 48, 11);
        for threads in [2, 3, 4, 8, 48, 64] {
            let sharded = yield_curve_parallel(&cover, 3, &rates, 48, 11, threads);
            assert_eq!(sequential, sharded, "{threads} threads diverged");
        }
        // The biased entry point shards the same way.
        let seq_biased = yield_curve_biased(&cover, 3, &rates, 32, 5, 0.4);
        let par_biased = yield_curve_biased_parallel(&cover, 3, &rates, 32, 5, 0.4, 4);
        assert_eq!(seq_biased, par_biased);
    }
}
