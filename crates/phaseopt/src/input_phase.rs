//! Input phase assignment: balancing n-type vs p-type devices.
//!
//! The second half of Sasao's 1984 optimization pair is *input* variable
//! assignment. In the GNOR array an input's polarity sense is free — but
//! the two senses program **different device types** (`Pass` = n-type,
//! `Invert` = p-type), and real ambipolar CNFETs have asymmetric branch
//! currents (the hole branch is typically weaker). Choosing each input's
//! phase so that the majority of its literals become n-type devices
//! improves the worst-case pull-down current at zero logic cost: the
//! complement is supplied by the upstream GNOR stage's driver polarity,
//! which is itself free.
//!
//! [`balance_input_phases`] flips each input whose column programs more
//! p-type than n-type devices and returns the re-phased cover plus the
//! device-type accounting.

use logic::{Cover, Cube, Tri};

/// Result of input phase balancing.
#[derive(Debug, Clone)]
pub struct InputPhaseAssignment {
    /// `phases[i] = true` means input `i` is consumed in complemented form
    /// (the upstream driver publishes `x̄_i`).
    pub phases: Vec<bool>,
    /// The cover over the re-phased inputs: `cover(x ⊕ phases) = F(x)`.
    pub cover: Cover,
    /// p-type (Invert) devices of the direct mapping.
    pub invert_devices_before: usize,
    /// p-type devices after balancing.
    pub invert_devices_after: usize,
}

impl InputPhaseAssignment {
    /// Fraction of literal devices that are p-type after balancing.
    pub fn ptype_fraction(&self) -> f64 {
        let total: usize = self.cover.literal_count();
        if total == 0 {
            0.0
        } else {
            self.invert_devices_after as f64 / total as f64
        }
    }
}

/// Count the p-type (Invert) devices the GNOR mapping of `cover` would
/// program: one per positive literal (`Tri::One`).
pub fn count_invert_devices(cover: &Cover) -> usize {
    cover
        .iter()
        .map(|c| {
            (0..cover.n_inputs())
                .filter(|&i| c.input(i) == Tri::One)
                .count()
        })
        .sum()
}

/// Flip each input whose column carries more positive than negative
/// literals, so the GNOR mapping programs n-type devices wherever
/// possible.
pub fn balance_input_phases(cover: &Cover) -> InputPhaseAssignment {
    let n = cover.n_inputs();
    let before = count_invert_devices(cover);
    let mut phases = vec![false; n];
    for (i, phase) in phases.iter_mut().enumerate() {
        let mut ones = 0usize;
        let mut zeros = 0usize;
        for c in cover.iter() {
            match c.input(i) {
                Tri::One => ones += 1,
                Tri::Zero => zeros += 1,
                Tri::DontCare => {}
            }
        }
        *phase = ones > zeros;
    }
    let rephased = apply_input_phases(cover, &phases);
    InputPhaseAssignment {
        invert_devices_after: count_invert_devices(&rephased),
        invert_devices_before: before,
        phases,
        cover: rephased,
    }
}

/// Complement the selected variables of every cube:
/// `result(x) = cover(x ⊕ phases)`.
///
/// # Panics
///
/// Panics if `phases.len() != cover.n_inputs()`.
pub fn apply_input_phases(cover: &Cover, phases: &[bool]) -> Cover {
    assert_eq!(phases.len(), cover.n_inputs(), "one phase per input");
    let cubes: Vec<Cube> = cover
        .iter()
        .map(|c| {
            let mut flipped = c.clone();
            for (i, &flip) in phases.iter().enumerate() {
                if flip {
                    let t = match c.input(i) {
                        Tri::One => Tri::Zero,
                        Tri::Zero => Tri::One,
                        Tri::DontCare => Tri::DontCare,
                    };
                    flipped.set_input(i, t);
                }
            }
            flipped
        })
        .collect();
    Cover::from_cubes(cover.n_inputs(), cover.n_outputs(), cubes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    #[test]
    fn rephased_cover_is_the_phased_function() {
        let f = cover("110 1\n1-1 1\n011 1", 3, 1);
        let a = balance_input_phases(&f);
        for bits in 0..8u64 {
            let mut phased = bits;
            for (i, &flip) in a.phases.iter().enumerate() {
                if flip {
                    phased ^= 1 << i;
                }
            }
            assert_eq!(
                a.cover.eval_bits(phased)[0],
                f.eval_bits(bits)[0],
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn positive_heavy_columns_get_flipped() {
        // Column 0 all-positive → flipped; column 1 all-negative → kept.
        let f = cover("10 1\n1- 1\n10 1", 2, 1);
        let a = balance_input_phases(&f);
        assert_eq!(a.phases, vec![true, false]);
        assert_eq!(a.invert_devices_before, 3);
        assert_eq!(a.invert_devices_after, 0);
    }

    #[test]
    fn balancing_never_increases_invert_devices() {
        for seed_text in ["11- 1\n-01 1\n100 1", "000 1\n-1- 1", "1-1 11\n0-0 01"] {
            let (ni, no) = if seed_text.contains("11") && seed_text.ends_with("01") {
                (3, 2)
            } else {
                (3, 1)
            };
            let f = cover(seed_text, ni, no);
            let a = balance_input_phases(&f);
            assert!(a.invert_devices_after <= a.invert_devices_before);
        }
    }

    #[test]
    fn literal_count_is_preserved() {
        // Phase flips trade literal polarity, never literal count.
        let f = cover("110 1\n0-1 1", 3, 1);
        let a = balance_input_phases(&f);
        assert_eq!(a.cover.literal_count(), f.literal_count());
    }

    #[test]
    fn balancing_is_idempotent() {
        let f = cover("11- 1\n-01 1\n100 1", 3, 1);
        let once = balance_input_phases(&f);
        let twice = balance_input_phases(&once.cover);
        assert_eq!(twice.phases, vec![false; 3], "already balanced");
        assert_eq!(once.invert_devices_after, twice.invert_devices_after);
    }

    #[test]
    fn ptype_fraction_at_most_half() {
        // After balancing, no column has a p-type majority, so overall
        // p-type fraction is at most 1/2.
        for text in ["111 1\n11- 1\n1-1 1", "10 1\n01 1", "1111 1"] {
            let ni = text
                .lines()
                .next()
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .len();
            let f = cover(text, ni, 1);
            let a = balance_input_phases(&f);
            assert!(
                a.ptype_fraction() <= 0.5 + 1e-9,
                "{text}: {}",
                a.ptype_fraction()
            );
        }
    }

    #[test]
    fn double_application_roundtrips() {
        let f = cover("1-0 1\n01- 1", 3, 1);
        let phases = vec![true, false, true];
        let g = apply_input_phases(&f, &phases);
        let back = apply_input_phases(&g, &phases);
        assert_eq!(back, f);
    }
}
