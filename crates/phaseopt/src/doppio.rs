//! Doppio-Espresso-style Whirlpool-PLA synthesis.
//!
//! A Whirlpool PLA (Brayton et al., ICCAD 2002) evaluates a 4-level NOR
//! network on four cascaded planes. The *Doppio-Espresso* idea is to
//! minimize **two** two-level instances that share the array instead of one
//! monolithic cover. This module implements the product-split variant on
//! top of the GNOR planes:
//!
//! 1. Run ESPRESSO (with output-phase freedom) on the cover; let `P` be its
//!    products.
//! 2. Split `P` into halves `A` and `B` balancing the plane widths.
//! 3. Planes 1–2 compute `u_j = NOR(A_j)` — the complement of the first
//!    half-OR of each output.
//! 4. Plane 3 computes the `B` products from the primary inputs (tapped
//!    around the ring) and buffers the `u_j` through.
//! 5. Plane 4 exploits GNOR inversion: `F̄_j = NOR(ū_j, B_j products…)`
//!    `= u_j ∧ NOR(B_j) = NOR(A_j) ∧ NOR(B_j)`.
//!
//! The split keeps every plane at roughly half the product width of the
//! flat PLA — the routability/aspect-ratio benefit Whirlpool layouts are
//! built around — at the cost of the buffer column per output. The result
//! is verified equivalent to the input cover.

use ambipla_core::{GnorPlane, InputPolarity, Wpla};
use logic::{espresso_with_dc, Cover, Tri};

/// Result of WPLA synthesis.
#[derive(Debug, Clone)]
pub struct DoppioResult {
    /// The synthesized four-plane PLA.
    pub wpla: Wpla,
    /// Basic cells of the flat two-level GNOR PLA for the same cover.
    pub two_level_cells: usize,
    /// Basic cells of the WPLA (sum over the four planes).
    pub wpla_cells: usize,
    /// Widest plane (rows) of the WPLA — the routing-pitch figure Whirlpool
    /// layouts optimize.
    pub wpla_max_width: usize,
    /// Product rows of the flat two-level PLA.
    pub two_level_width: usize,
}

impl DoppioResult {
    /// Ratio of the WPLA's widest plane to the flat PLA's product count
    /// (< 1 means the whirlpool halves the critical array pitch).
    pub fn width_ratio(&self) -> f64 {
        self.wpla_max_width as f64 / self.two_level_width.max(1) as f64
    }
}

/// Synthesize a Whirlpool PLA for `(on, dc)`.
///
/// # Panics
///
/// Panics if the cover is empty or has no outputs.
pub fn synthesize_wpla(on: &Cover, dc: &Cover) -> DoppioResult {
    assert!(on.n_outputs() > 0, "cover must have outputs");
    let (cover, _) = espresso_with_dc(on, dc);
    assert!(!cover.is_empty(), "cover must have product terms");
    let n = cover.n_inputs();
    let o = cover.n_outputs();
    let p = cover.len();

    // Split products into halves A = [0, half) and B = [half, p).
    let half = p.div_ceil(2);
    let a_rows = half;
    let b_rows = p - half;

    // Plane 1: products of A from the primary inputs.
    let plane1 = GnorPlane::from_controls(
        (0..a_rows)
            .map(|r| product_controls(&cover, r, n))
            .collect(),
    );
    // Plane 2: u_j = NOR over A-products of output j.
    let plane2 = GnorPlane::from_controls(
        (0..o)
            .map(|j| {
                (0..a_rows)
                    .map(|r| {
                        if cover.cubes()[r].has_output(j) {
                            InputPolarity::Pass
                        } else {
                            InputPolarity::Drop
                        }
                    })
                    .collect()
            })
            .collect(),
    );
    // Plane 3 inputs: [u_0..u_{o-1}] ++ primary inputs (tap).
    // Rows: o buffers (w_j = NOR(ū_j) = u_j) followed by the B products.
    let mut plane3_rows: Vec<Vec<InputPolarity>> = Vec::with_capacity(o + b_rows);
    for j in 0..o {
        let mut row = vec![InputPolarity::Drop; o + n];
        row[j] = InputPolarity::Invert; // NOR(ū_j) = u_j
        plane3_rows.push(row);
    }
    for r in half..p {
        let mut row = vec![InputPolarity::Drop; o + n];
        let prod = product_controls(&cover, r, n);
        row[o..].copy_from_slice(&prod);
        plane3_rows.push(row);
    }
    let plane3 = GnorPlane::from_controls(plane3_rows);
    // Plane 4 row j: NOR(w̄_j, B_j products) = u_j ∧ NOR(B_j) = F̄_j.
    let plane4 = GnorPlane::from_controls(
        (0..o)
            .map(|j| {
                let mut row = vec![InputPolarity::Drop; o + b_rows];
                row[j] = InputPolarity::Invert; // w̄_j
                for (k, r) in (half..p).enumerate() {
                    if cover.cubes()[r].has_output(j) {
                        row[o + k] = InputPolarity::Pass;
                    }
                }
                row
            })
            .collect(),
    );

    let wpla = Wpla::from_planes_with_taps(
        [plane1, plane2, plane3, plane4],
        vec![true; o], // F̄_j at the NOR, inverting driver restores F_j
        [false, true, false],
        n,
    );
    debug_assert!(wpla.implements(&cover) || cover.n_inputs() > logic::eval::EXHAUSTIVE_LIMIT);

    let two_level_cells = p * (n + o);
    DoppioResult {
        wpla_cells: wpla.cells(),
        wpla_max_width: wpla.planes().iter().map(GnorPlane::rows).max().unwrap_or(0),
        two_level_cells,
        two_level_width: p,
        wpla,
    }
}

/// GNOR controls realizing product row `r` of `cover` from the inputs.
fn product_controls(cover: &Cover, r: usize, n: usize) -> Vec<InputPolarity> {
    (0..n)
        .map(|i| match cover.cubes()[r].input(i) {
            Tri::One => InputPolarity::Invert,
            Tri::Zero => InputPolarity::Pass,
            Tri::DontCare => InputPolarity::Drop,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambipla_core::Simulator;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    fn dc(ni: usize, no: usize) -> Cover {
        Cover::new(ni, no)
    }

    #[test]
    fn xor_wpla_is_equivalent() {
        let f = cover("10 1\n01 1", 2, 1);
        let r = synthesize_wpla(&f, &dc(2, 1));
        assert!(r.wpla.implements(&f));
    }

    #[test]
    fn full_adder_wpla_is_equivalent() {
        let f = cover(
            "110 01\n101 01\n011 01\n111 01\n100 10\n010 10\n001 10\n111 10",
            3,
            2,
        );
        let r = synthesize_wpla(&f, &dc(3, 2));
        assert!(r.wpla.implements(&f));
    }

    #[test]
    fn plane_width_is_halved() {
        // 8 products, 1 output: the flat PLA has 8 rows; each WPLA plane
        // should peak at about half plus the buffer row.
        let f = cover(
            "1000 1\n0100 1\n0010 1\n0001 1\n1110 1\n1101 1\n1011 1\n0111 1",
            4,
            1,
        );
        let r = synthesize_wpla(&f, &dc(4, 1));
        assert!(r.wpla.implements(&f));
        assert_eq!(r.two_level_width, 8);
        assert!(
            r.wpla_max_width <= 5,
            "max plane width {} should be ~half of 8",
            r.wpla_max_width
        );
        assert!(r.width_ratio() < 1.0);
    }

    #[test]
    fn odd_product_counts_split_cleanly() {
        let f = cover("100 1\n010 1\n001 1", 3, 1);
        let r = synthesize_wpla(&f, &dc(3, 1));
        assert!(r.wpla.implements(&f));
    }

    #[test]
    fn single_product_degenerates_gracefully() {
        let f = cover("11 1", 2, 1);
        let r = synthesize_wpla(&f, &dc(2, 1));
        assert!(r.wpla.implements(&f));
    }

    #[test]
    fn multi_output_sharing_survives_the_split() {
        let f = cover("11- 11\n-11 10\n0-0 01", 3, 2);
        let r = synthesize_wpla(&f, &dc(3, 2));
        assert!(r.wpla.implements(&f));
        assert_eq!(r.wpla.n_outputs(), 2);
    }

    #[test]
    fn dc_set_is_used() {
        // With generous don't-cares the minimized cover shrinks before the
        // split, shrinking the WPLA too.
        let on = cover("000 1", 3, 1);
        let dcs = cover("001 1\n010 1\n011 1", 3, 1);
        let r = synthesize_wpla(&on, &dcs);
        // Must cover ON points and avoid OFF points. Cube chars are input
        // positions, packed bits are bit-i = input-i: the OFF-set here is
        // every assignment with x0 = 1, i.e. odd packed values.
        assert!(r.wpla.simulate_bits(0b000)[0]);
        for bits in [0b001u64, 0b011, 0b101, 0b111] {
            assert!(!r.wpla.simulate_bits(bits)[0], "OFF point {bits:03b}");
        }
    }

    #[test]
    fn cells_are_reported() {
        let f = cover("10 1\n01 1", 2, 1);
        let r = synthesize_wpla(&f, &dc(2, 1));
        assert_eq!(r.two_level_cells, 2 * 3);
        assert!(r.wpla_cells > 0);
    }
}
