//! Sasao-style output phase assignment.
//!
//! For every output `j` the synthesizer may implement `F_j` or its
//! complement `F̄_j`; the GNOR PLA restores the chosen polarity in the
//! output driver at zero cost ("the availability of the product-terms with
//! both polarities, allowing a further degree of freedom in minimizing the
//! PLA", Section 5). The optimization problem — pick the phase vector that
//! minimizes the product-term count of the jointly minimized multi-output
//! cover — is the input/output phase assignment of Sasao (1984) implemented
//! in the MINI-II heuristic.
//!
//! Two strategies are provided: exhaustive enumeration of all `2^o` phase
//! vectors (small output counts) and the greedy one-flip-at-a-time descent
//! MINI-II popularized.

use ambipla_core::{GnorPla, GnorPlane, InputPolarity};
use logic::{espresso_with_dc, Cover};

/// Phase-search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseStrategy {
    /// Try all `2^o` phase vectors. Exact but exponential; refuse above 10
    /// outputs.
    Exhaustive,
    /// Greedy descent: repeatedly flip the single output whose flip reduces
    /// the cube count the most, until no flip helps.
    Greedy,
}

/// Result of a phase optimization run.
#[derive(Debug, Clone)]
pub struct PhaseAssignment {
    /// Chosen phase per output: `true` = the cover implements `F̄_j`.
    pub phases: Vec<bool>,
    /// Jointly minimized cover of the phase-adjusted functions.
    pub cover: Cover,
    /// Product terms of the all-positive minimized cover (the baseline).
    pub before_products: usize,
    /// Product terms of the phase-optimized cover.
    pub after_products: usize,
}

impl PhaseAssignment {
    /// Driver polarities for a [`GnorPla`] realizing the original `F`:
    /// the output-plane NOR of the cover of `G_j` publishes `Ḡ_j`, so a
    /// positive-phase output needs an inverting driver and a complemented
    /// output a non-inverting one.
    pub fn inverting_drivers(&self) -> Vec<bool> {
        self.phases.iter().map(|&flipped| !flipped).collect()
    }

    /// Build the GNOR PLA realizing the original function with the chosen
    /// phases.
    pub fn to_gnor_pla(&self) -> GnorPla {
        let direct = GnorPla::from_cover(&self.cover);
        // Replace driver polarities: flipped outputs skip the inversion.
        GnorPla::from_parts(
            direct.input_plane().clone(),
            rebuild_output_plane(&self.cover),
            self.inverting_drivers(),
        )
    }
}

fn rebuild_output_plane(cover: &Cover) -> GnorPlane {
    let mut controls = vec![Vec::with_capacity(cover.len()); cover.n_outputs()];
    for cube in cover.iter() {
        for (j, row) in controls.iter_mut().enumerate() {
            row.push(if cube.has_output(j) {
                InputPolarity::Pass
            } else {
                InputPolarity::Drop
            });
        }
    }
    GnorPlane::from_controls(controls)
}

/// Minimized cover of the phase-adjusted function: output `j` of the result
/// implements `F̄_j` where `phases[j]` is set, `F_j` otherwise. Don't-cares
/// are preserved (`F̄` is minimized against the same DC set).
///
/// # Panics
///
/// Panics if arities differ or `phases.len() != on.n_outputs()`.
pub fn phased_cover(on: &Cover, dc: &Cover, phases: &[bool]) -> Cover {
    assert_eq!(on.n_outputs(), phases.len(), "one phase per output");
    assert_eq!(on.n_inputs(), dc.n_inputs(), "input arity mismatch");
    assert_eq!(on.n_outputs(), dc.n_outputs(), "output arity mismatch");
    let slices: Vec<Cover> = (0..on.n_outputs())
        .map(|j| {
            let on_j = on.output_slice(j);
            let dc_j = dc.output_slice(j);
            if phases[j] {
                // ON(F̄) = complement(ON ∪ DC); DC unchanged.
                on_j.union(&dc_j).complement()
            } else {
                on_j
            }
        })
        .collect();
    let assembled = Cover::from_output_slices(&slices);
    let (minimized, _) = espresso_with_dc(&assembled, dc);
    minimized
}

/// Optimize the output phases of `(on, dc)` under `strategy`.
///
/// # Panics
///
/// Panics if `strategy` is [`PhaseStrategy::Exhaustive`] and the function
/// has more than 10 outputs, or if arities differ.
pub fn optimize_output_phases(on: &Cover, dc: &Cover, strategy: PhaseStrategy) -> PhaseAssignment {
    let o = on.n_outputs();
    let baseline = phased_cover(on, dc, &vec![false; o]);
    let before_products = baseline.len();

    let (phases, cover) = match strategy {
        PhaseStrategy::Exhaustive => {
            assert!(o <= 10, "exhaustive phase search limited to 10 outputs");
            let mut best = (vec![false; o], baseline.clone());
            for mask in 1u32..(1 << o) {
                let phases: Vec<bool> = (0..o).map(|j| mask >> j & 1 == 1).collect();
                let cover = phased_cover(on, dc, &phases);
                if better(&cover, &best.1) {
                    best = (phases, cover);
                }
            }
            best
        }
        PhaseStrategy::Greedy => {
            let mut phases = vec![false; o];
            let mut current = baseline.clone();
            loop {
                let mut best_flip: Option<(usize, Cover)> = None;
                for j in 0..o {
                    let mut trial = phases.clone();
                    trial[j] = !trial[j];
                    let cover = phased_cover(on, dc, &trial);
                    let improves = match &best_flip {
                        Some((_, b)) => better(&cover, b),
                        None => better(&cover, &current),
                    };
                    if improves {
                        best_flip = Some((j, cover));
                    }
                }
                match best_flip {
                    Some((j, cover)) => {
                        phases[j] = !phases[j];
                        current = cover;
                    }
                    None => break,
                }
            }
            (phases, current)
        }
    };

    PhaseAssignment {
        after_products: cover.len(),
        before_products,
        phases,
        cover,
    }
}

fn better(a: &Cover, b: &Cover) -> bool {
    (a.len(), a.literal_count()) < (b.len(), b.literal_count())
}

/// Verify that a phase assignment still implements the original function:
/// for every assignment and output, `result_j ⊕ phases[j] == F_j` on the
/// care set.
///
/// Returns the first violating `(bits, output)`, or `None` if consistent
/// (exhaustive up to [`logic::eval::EXHAUSTIVE_LIMIT`] inputs).
pub fn verify_phases(on: &Cover, dc: &Cover, assignment: &PhaseAssignment) -> Option<(u64, usize)> {
    let n = on.n_inputs();
    let space = 1u64 << n.min(logic::eval::EXHAUSTIVE_LIMIT);
    for bits in 0..space {
        let want = on.eval_bits(bits);
        let care = dc.eval_bits(bits);
        let got = assignment.cover.eval_bits(bits);
        for j in 0..on.n_outputs() {
            if care[j] {
                continue; // don't-care point
            }
            let restored = got[j] ^ assignment.phases[j];
            if restored != want[j] {
                return Some((bits, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(text: &str, ni: usize, no: usize) -> Cover {
        Cover::parse(text, ni, no).expect("parse cover")
    }

    fn empty_dc(on: &Cover) -> Cover {
        Cover::new(on.n_inputs(), on.n_outputs())
    }

    /// The canonical phase-opt win: an (n-1)-of-n style function whose
    /// complement has far fewer products. OR of all inputs: F has n cubes
    /// minimized to n single-literal cubes… actually F = x0+x1+x2 has 3
    /// cubes; F̄ = x̄0·x̄1·x̄2 has 1. Phase opt must find the flip.
    #[test]
    fn wide_or_flips_to_single_cube() {
        let f = cover("1-- 1\n-1- 1\n--1 1", 3, 1);
        let dc = empty_dc(&f);
        for strategy in [PhaseStrategy::Exhaustive, PhaseStrategy::Greedy] {
            let a = optimize_output_phases(&f, &dc, strategy);
            assert_eq!(a.phases, vec![true], "{strategy:?}");
            assert_eq!(a.after_products, 1, "{strategy:?}");
            assert_eq!(a.before_products, 3);
            assert_eq!(verify_phases(&f, &dc, &a), None);
        }
    }

    #[test]
    fn already_optimal_function_keeps_phases() {
        // XOR: both phases cost 2 products; no flip should happen.
        let f = cover("10 1\n01 1", 2, 1);
        let dc = empty_dc(&f);
        let a = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
        assert_eq!(a.after_products, 2);
        assert_eq!(verify_phases(&f, &dc, &a), None);
    }

    #[test]
    fn multi_output_mixed_phases() {
        // out0 = OR of 3 inputs (wants flip), out1 = single product (keeps).
        let f = cover("1-- 10\n-1- 10\n--1 10\n111 01", 3, 2);
        let dc = empty_dc(&f);
        let a = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
        assert!(a.phases[0], "output 0 should flip");
        assert!(a.after_products < a.before_products);
        assert_eq!(verify_phases(&f, &dc, &a), None);
    }

    #[test]
    fn greedy_never_worse_than_baseline() {
        let f = cover("11-- 10\n--11 01\n1--- 01\n-1-- 01", 4, 2);
        let dc = empty_dc(&f);
        let a = optimize_output_phases(&f, &dc, PhaseStrategy::Greedy);
        assert!(a.after_products <= a.before_products);
        assert_eq!(verify_phases(&f, &dc, &a), None);
    }

    #[test]
    fn phased_gnor_pla_implements_original() {
        let f = cover("1-- 10\n-1- 10\n--1 10\n111 01", 3, 2);
        let dc = empty_dc(&f);
        let a = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
        let pla = a.to_gnor_pla();
        assert!(pla.implements(&f), "phase-opt PLA must realize F");
        // And it must be no larger in rows.
        assert!(pla.dimensions().products <= GnorPla::from_cover(&f).dimensions().products);
    }

    #[test]
    fn dc_points_are_free() {
        // ON = {000}, DC = everything else → either phase collapses to one
        // cube (constant after DC assignment).
        let on = cover("000 1", 3, 1);
        let dc = cover("001 1\n01- 1\n1-- 1", 3, 1);
        let a = optimize_output_phases(&on, &dc, PhaseStrategy::Exhaustive);
        // ON ∪ DC is the whole space, so the complemented phase has an
        // *empty* ON-set: the optimizer may realize the output as the
        // constant produced by zero product rows.
        assert!(a.after_products <= 1);
        assert_eq!(verify_phases(&on, &dc, &a), None);
    }

    #[test]
    fn phased_cover_respects_explicit_phases() {
        let f = cover("1- 1\n-1 1", 2, 1);
        let dc = empty_dc(&f);
        let flipped = phased_cover(&f, &dc, &[true]);
        // F = a+b, F̄ = ā·b̄: single cube, two literals.
        assert_eq!(flipped.len(), 1);
        for bits in 0..4u64 {
            assert_eq!(flipped.eval_bits(bits)[0], !f.eval_bits(bits)[0]);
        }
    }

    #[test]
    #[should_panic(expected = "limited to 10 outputs")]
    fn exhaustive_refuses_wide_outputs() {
        let f = Cover::parse("1 11111111111", 1, 11).unwrap();
        let dc = Cover::new(1, 11);
        let _ = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
    }
}
