//! Output-phase optimization and Doppio-Espresso WPLA synthesis.
//!
//! Section 5 of the DAC 2008 paper points out that the GNOR PLA makes the
//! product terms and outputs available **in both polarities for free**,
//! which unlocks two classical synthesis techniques:
//!
//! * **Output phase assignment** (Sasao 1984, the MINI-II heuristic): for
//!   each output, implement either `F_j` or `F̄_j`, whichever lets the
//!   multi-output cover share more product terms — in a classical PLA the
//!   complemented output costs an inverter and a routed signal; in the GNOR
//!   PLA it is a driver-polarity bit ([`output_phase`]).
//! * **Whirlpool PLAs** (Brayton et al. 2002) synthesized by a
//!   Doppio-Espresso-style split of the cover across two cascaded NOR–NOR
//!   pairs ([`doppio`]).

pub mod doppio;
pub mod input_phase;
pub mod output_phase;

pub use doppio::{synthesize_wpla, DoppioResult};
pub use input_phase::{apply_input_phases, balance_input_phases, InputPhaseAssignment};
pub use output_phase::{optimize_output_phases, phased_cover, PhaseAssignment, PhaseStrategy};
