//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! — under the same crate name and module paths — the property-testing
//! subset the workspace uses: the [`Strategy`](strategy::Strategy) trait
//! with `prop_map`, range / tuple / [`collection::vec`] /
//! [`sample::subsequence`] / [`any`](arbitrary::any) /
//! weighted-[`prop_oneof!`] strategies, the [`proptest!`] test macro
//! driven by [`ProptestConfig`], and the `prop_assert*` macros.
//!
//! Differences from the real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its case number and base
//!   seed so it can be replayed, but is not minimized;
//! * **deterministic seeding** — cases derive from an FNV-1a hash of the
//!   test's module path and name, so runs are reproducible by default.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// FNV-1a hash of a test identifier — the per-test base seed.
pub const fn test_seed(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// The RNG for one test case.
pub fn new_rng(base: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(base ^ (case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::ops::Range;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform + Copy> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Weighted choice among boxed strategies of one value type — what
    /// the [`prop_oneof!`](crate::prop_oneof) macro builds.
    pub struct Union<V> {
        options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// A union drawing each option with probability proportional to
        /// its weight.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty or every weight is 0.
        pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
            let total: u64 = options.iter().map(|&(w, _)| w as u64).sum();
            assert!(total > 0, "prop_oneof needs a positive total weight");
            Union { options, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let mut draw = rng.gen_range(0..self.total);
            for (weight, strategy) in &self.options {
                if draw < *weight as u64 {
                    return strategy.generate(rng);
                }
                draw -= *weight as u64;
            }
            unreachable!("draw below total weight always lands in an option")
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` strategy.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies over concrete collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`subsequence`].
    pub struct SubsequenceStrategy<T> {
        items: Vec<T>,
        size: usize,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut StdRng) -> Vec<T> {
            // Selection sampling: keep order, pick exactly `size` items.
            let mut out = Vec::with_capacity(self.size);
            let mut needed = self.size;
            let total = self.items.len();
            for (i, item) in self.items.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = total - i;
                if rng.gen_range(0..remaining) < needed {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }

    /// A random order-preserving subsequence of exactly `size` elements.
    ///
    /// # Panics
    ///
    /// Panics if `size > items.len()`.
    pub fn subsequence<T: Clone>(items: Vec<T>, size: usize) -> SubsequenceStrategy<T> {
        assert!(size <= items.len(), "subsequence larger than the source");
        SubsequenceStrategy { items, size }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`3 => strat`) or uniform (`strat, strat`) choice among
/// strategies that generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strategy),+]
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }` runs
/// `body` for [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let base = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let mut rng = $crate::new_rng(base, case);
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (base seed {:#x}); no shrinking in the offline shim",
                            stringify!($name), case, config.cases, base,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::new_rng(1, 0);
        let strat = (0..10u8).prop_map(|v| v as u32 + 100);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::new_rng(2, 0);
        let exact = crate::collection::vec(any::<bool>(), 6);
        assert_eq!(exact.generate(&mut rng).len(), 6);
        let ranged = crate::collection::vec(0..5u8, 1..=4);
        for _ in 0..50 {
            let len = ranged.generate(&mut rng).len();
            assert!((1..=4).contains(&len));
        }
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::new_rng(3, 0);
        let strat = crate::sample::subsequence((0..10usize).collect::<Vec<_>>(), 4);
        for _ in 0..50 {
            let sub = strat.generate(&mut rng);
            assert_eq!(sub.len(), 4);
            assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
        let full = crate::sample::subsequence((0..6usize).collect::<Vec<_>>(), 6);
        assert_eq!(full.generate(&mut rng), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn oneof_respects_weights_and_variants() {
        let mut rng = crate::new_rng(4, 0);
        // 3:1 bias towards the low range; both arms must appear and the
        // heavy arm must dominate over many draws.
        let strat = prop_oneof![
            3 => (0..10u32).prop_map(|v| v),
            1 => (100..110u32).prop_map(|v| v),
        ];
        let (mut low, mut high) = (0u32, 0u32);
        for _ in 0..400 {
            let v: u32 = strat.generate(&mut rng);
            match v {
                v if v < 10 => low += 1,
                v if (100..110).contains(&v) => high += 1,
                v => panic!("value {v} from neither arm"),
            }
        }
        assert!(low > high, "3:1 weights must favor the first arm");
        assert!(high > 0, "the light arm still fires");
        // Unweighted form defaults every arm to weight 1.
        let uniform = prop_oneof![Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[uniform.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0..100u64, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip as u64 * 2 % 2, 0);
        }
    }
}
