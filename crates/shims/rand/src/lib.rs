//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate vendors — under the same crate name and module paths — exactly
//! the API subset the workspace uses:
//!
//! * [`rngs::StdRng`] seeded through [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_bool`] and [`Rng::gen_range`] over primitive `Range`s.
//!
//! The generator is **xoshiro256++** seeded by a SplitMix64 expansion of the
//! `u64` seed (the same seeding scheme the real `rand` uses for small
//! seeds). Streams are deterministic per seed, which is all the Monte-Carlo
//! code in this workspace relies on; they are *not* bit-compatible with the
//! real `StdRng` (ChaCha12), and nothing in the workspace assumes they are.

use std::ops::Range;

/// Random number generators.
pub mod rngs {
    /// Deterministic 256-bit-state generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw a uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128) - (low as u128);
                // Multiply-shift (Lemire): unbiased enough for simulation use.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                low + draw as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// User-facing sampling methods, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not in [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    /// Uniform draw from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u8);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits} hits at p=0.3");
    }

    #[test]
    fn uniform_int_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0..3u8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_bad_probability() {
        StdRng::seed_from_u64(0).gen_bool(1.5);
    }
}
