//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! — under the same crate name — the API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple (no outlier rejection, no HTML
//! reports): each benchmark is warmed up, calibrated so one sample takes a
//! few milliseconds, sampled [`Criterion::default`]-many times, and the
//! median / min / max per-iteration times are printed in criterion's
//! familiar `time: [low median high]` shape. Medians are stable enough for
//! the ≥ 8× batch-vs-scalar speedup checks the repository's benches assert.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the calibrated number of iterations, timing the whole
    /// batch. The return value is passed through [`black_box`] so the
    /// computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// Measurement result for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time in nanoseconds.
    pub max_ns: f64,
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn measure<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) -> Measurement {
    // Warm-up and calibration: find an iteration count whose sample takes
    // roughly `TARGET_SAMPLE`.
    const TARGET_SAMPLE: Duration = Duration::from_millis(5);
    const MAX_CALIBRATION: Duration = Duration::from_millis(500);
    let mut iters: u64 = 1;
    let calibration_start = Instant::now();
    loop {
        let t = run_sample(&mut f, iters);
        if t >= TARGET_SAMPLE || calibration_start.elapsed() >= MAX_CALIBRATION {
            if t < TARGET_SAMPLE && t > Duration::ZERO {
                let scale = TARGET_SAMPLE.as_secs_f64() / t.as_secs_f64();
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let samples = sample_size.clamp(3, 100);
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| run_sample(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let m = Measurement {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
    };
    println!(
        "{name:<40} time: [{} {} {}]",
        format_time(m.min_ns),
        format_time(m.median_ns),
        format_time(m.max_ns),
    );
    m
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `f`, handing it `input` alongside the [`Bencher`].
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.text);
        let m = measure(&label, self.sample_size, |b| f(b, input));
        self.criterion.results.push((label, m));
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().text);
        let m = measure(&label, self.sample_size, f);
        self.criterion.results.push((label, m));
        self
    }

    /// Finish the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Benchmark manager: collects results from every group it spawns.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Measurement)>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 15,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let m = measure(id, 15, f);
        self.results.push((id.to_string(), m));
        self
    }

    /// All measurements recorded so far, as `(label, measurement)` pairs.
    pub fn results(&self) -> &[(String, Measurement)] {
        &self.results
    }

    /// Median per-iteration nanoseconds of the first result whose label
    /// contains `needle`. Used by benches that assert speedup ratios.
    pub fn median_ns(&self, needle: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(label, _)| label.contains(needle))
            .map(|&(_, m)| m.median_ns)
    }
}

/// Define a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running benchmark groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1.median_ns > 0.0);
        assert!(c.median_ns("spin").is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("map", "xor").text, "map/xor");
        assert_eq!(BenchmarkId::from_parameter(64).text, "64");
    }
}
