//! Fault tolerance on the regular GNOR array: inject crosspoint defects,
//! watch the function break, then repair by spare-row re-assignment and
//! verify by fault simulation.
//!
//! Run: `cargo run --example defect_repair`

use ambipla::core::GnorPla;
use ambipla::fault::{repair, DefectKind, DefectMap, FaultyGnorPla, RepairOutcome};
use ambipla::logic::Cover;

fn main() {
    let f = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover"); // XOR
    let pla = GnorPla::from_cover(&f);

    // Fabricated array: 2 product rows + 2 spares, with two defects.
    let mut defects = DefectMap::clean(4, 2, 1);
    defects.set_input_defect(0, 0, DefectKind::StuckOn); // row 0 dead
    defects.set_input_defect(2, 1, DefectKind::StuckOff); // row 2 weakened
    println!("defects: {} crosspoints broken", defects.defect_count());

    // Without repair, the naive mapping (rows 0 and 1) is broken.
    let naive_defects = {
        let mut d = DefectMap::clean(2, 2, 1);
        d.set_input_defect(0, 0, DefectKind::StuckOn);
        d
    };
    let broken = FaultyGnorPla::new(pla, naive_defects);
    println!(
        "naive mapping still computes XOR? {}",
        broken.implements(&f)
    );
    assert!(!broken.implements(&f));

    // Repair: re-assign the two cubes among the four physical rows.
    match repair(&f, &defects) {
        RepairOutcome::Repaired {
            pla,
            assignment,
            spares_left,
        } => {
            println!("repair assignment (cube -> physical row): {assignment:?}");
            println!("spare rows left: {spares_left}");
            let fixed = FaultyGnorPla::new(pla, defects);
            let ok = fixed.implements(&f);
            println!("repaired array computes XOR? {ok}");
            assert!(ok);
        }
        RepairOutcome::Unrepairable { reason } => {
            panic!("expected repairable array, got: {reason}");
        }
    }
}
