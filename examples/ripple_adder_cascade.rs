//! "Interleaving PLA and interconnects … realizes any logic function"
//! (Section 4): a 2-bit ripple-carry adder built as a cascade of two GNOR
//! PLA stages joined by a programmed crossbar.
//!
//! Stage 1 adds the low bits and *buffers the untouched operands through*
//! (a GNOR plane buffers for free — one inverted-literal row per signal);
//! stage 2 adds the high bits with the ripple carry.
//!
//! Run: `cargo run -p ambipla --example ripple_adder_cascade`

use ambipla::core::{PlaNetwork, Simulator};
use ambipla::logic::Cover;

fn main() {
    // Inputs: a0, b0, a1, b1 (packed bits 0..3).
    // Stage 1 outputs: s0, c1, a1(buffered), b1(buffered).
    let stage1 = Cover::parse(
        "10-- 1000\n01-- 1000\n\
         11-- 0100\n\
         --1- 0010\n\
         ---1 0001",
        4,
        4,
    )
    .expect("stage 1 cover");
    // Stage 2 inputs: s0, c1, a1, b1. Outputs: s0(buffered), s1, c2.
    // s1 = a1 ^ b1 ^ c1, c2 = majority(a1, b1, c1).
    let stage2 = Cover::parse(
        "1--- 100\n\
         -100 010\n-010 010\n-001 010\n-111 010\n\
         -11- 001\n-1-1 001\n--11 001",
        4,
        3,
    )
    .expect("stage 2 cover");

    let net = PlaNetwork::chain_of_covers(&[stage1, stage2]);
    println!(
        "cascade: {} stages, {} programmed devices, {} -> {} signals",
        net.n_stages(),
        net.active_devices(),
        net.n_inputs(),
        net.n_outputs()
    );
    println!();
    println!("| a | b | a+b | s1 s0 | carry |");
    println!("|---|---|-----|-------|-------|");
    let mut errors = 0;
    for a in 0..4u64 {
        for b in 0..4u64 {
            // Pack as (a0, b0, a1, b1).
            let bits = (a & 1) | (b & 1) << 1 | (a >> 1 & 1) << 2 | (b >> 1 & 1) << 3;
            let out = Simulator::simulate_bits(&net, bits); // [s0, s1, c2]
            let sum = u64::from(out[0]) | u64::from(out[1]) << 1 | u64::from(out[2]) << 2;
            if sum != a + b {
                errors += 1;
            }
            println!(
                "| {a} | {b} | {:>3} |  {}  {}  |   {}   |",
                a + b,
                u8::from(out[1]),
                u8::from(out[0]),
                u8::from(out[2])
            );
        }
    }
    println!();
    if errors == 0 {
        println!("All 16 additions correct: the PLA⇄interconnect cascade computes a+b.");
    } else {
        println!("{errors} additions WRONG");
        std::process::exit(1);
    }
}
