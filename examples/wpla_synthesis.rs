//! Synthesis walkthrough for the §5 extensions: output-phase optimization
//! (Sasao / MINI-II) and Doppio-Espresso Whirlpool-PLA synthesis, both
//! enabled by the GNOR array's free internal polarities.
//!
//! Run: `cargo run --example wpla_synthesis`

use ambipla::logic::Cover;
use ambipla::phase::{optimize_output_phases, synthesize_wpla, PhaseStrategy};

fn main() {
    // A phase-friendly function: out0 = OR of three inputs (complement is
    // one cube), out1 = a single product.
    let f = Cover::parse("1-- 10\n-1- 10\n--1 10\n111 01", 3, 2).expect("valid cover");
    let dc = Cover::new(3, 2);

    println!("== Output phase assignment ==");
    let a = optimize_output_phases(&f, &dc, PhaseStrategy::Exhaustive);
    println!("chosen phases (true = complemented): {:?}", a.phases);
    println!(
        "product terms: {} -> {}",
        a.before_products, a.after_products
    );
    let pla = a.to_gnor_pla();
    assert!(pla.implements(&f), "phase-opt PLA realizes the original F");
    println!(
        "GNOR PLA rows after phase-opt: {} (drivers: {:?})",
        pla.dimensions().products,
        pla.inverting_outputs()
    );

    println!();
    println!("== Whirlpool PLA (Doppio-Espresso split) ==");
    let r = synthesize_wpla(&f, &dc);
    println!(
        "flat 2-level width: {} rows; WPLA plane widths: {:?}",
        r.two_level_width,
        r.wpla.planes().iter().map(|p| p.rows()).collect::<Vec<_>>()
    );
    println!(
        "width ratio {:.2}, cells {} (flat: {})",
        r.width_ratio(),
        r.wpla_cells,
        r.two_level_cells
    );
    assert!(r.wpla.implements(&f), "WPLA realizes the function");
    println!("WPLA verified equivalent to the original function.");
}
