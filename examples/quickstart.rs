//! Quickstart: minimize a function, map it onto an ambipolar-CNFET GNOR
//! PLA, program the array, and price it against Flash and EEPROM.
//!
//! Run: `cargo run --example quickstart`

use ambipla::core::{GnorPla, Simulator, Technology};
use ambipla::logic::{espresso, Cover};

fn main() {
    // A 1-bit full adder: outputs (sum, carry) of a + b + cin.
    let adder = Cover::parse(
        "110 01\n101 01\n011 01\n111 01\n\
         100 10\n010 10\n001 10\n111 10",
        3,
        2,
    )
    .expect("valid cover");

    // 1. Two-level minimization (from-scratch ESPRESSO).
    let (minimized, stats) = espresso(&adder);
    println!(
        "espresso: {} -> {} product terms ({} -> {} literals)",
        stats.initial_cubes, stats.final_cubes, stats.initial_literals, stats.final_literals
    );

    // 2. Map onto the GNOR PLA — one column per input, polarity generated
    //    inside the array.
    let pla = GnorPla::from_cover(&minimized);
    let dims = pla.dimensions();
    println!(
        "GNOR PLA: {dims} -> {} columns (a classical PLA needs {})",
        dims.column_count_cnfet(),
        dims.column_count_classical()
    );

    // 3. Simulate: 1 + 1 + 0 = 10b.
    let out = pla.simulate(&[true, true, false]);
    println!(
        "1+1+0 -> sum={}, carry={}",
        u8::from(out[0]),
        u8::from(out[1])
    );
    assert_eq!(out, vec![false, true]);
    assert!(pla.implements(&adder), "PLA must realize the adder exactly");

    // 4. Program the physical array through the charge-based row/column
    //    protocol and read it back.
    let (m1, m2) = pla.program(1e-3);
    println!(
        "programmed {} + {} charge pulses",
        m1.pulse_count(),
        m2.pulse_count()
    );
    let back = GnorPla::from_programmed(&m1, &m2, pla.inverting_outputs().to_vec());
    assert!(back.implements(&adder), "array readback must still work");

    // 5. Price it (Table 1 model).
    for tech in Technology::ALL {
        println!("{:<6} area: {:>6} L^2", tech.name(), tech.pla_area(dims));
    }
}
