//! Area report across the whole benchmark registry, plus an input-count
//! sweep locating the Flash/CNFET crossover the paper describes ("the
//! CNFET implementation can only save area compared to Flash if the PLA
//! has a large number of inputs").
//!
//! Run: `cargo run --example area_report --release`

use ambipla::benchmarks as mcnc;
use ambipla::core::{area::cnfet_saving_over, PlaDimensions, Technology};
use ambipla::logic::espresso_with_dc;

fn main() {
    println!("== Area across the registry (after ESPRESSO) ==");
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>10} {:>9}",
        "benchmark", "dims", "Flash", "EEPROM", "CNFET", "vs Flash"
    );
    for b in mcnc::registry() {
        let (min, _) = espresso_with_dc(&b.on, &b.dc);
        let dims = PlaDimensions {
            inputs: min.n_inputs(),
            outputs: min.n_outputs(),
            products: min.len(),
        };
        println!(
            "{:<12} {:>14} {:>10} {:>10} {:>10} {:>+8.1}%",
            b.name,
            dims.to_string(),
            Technology::Flash.pla_area(dims),
            Technology::Eeprom.pla_area(dims),
            Technology::CnfetGnor.pla_area(dims),
            100.0 * cnfet_saving_over(Technology::Flash, dims),
        );
    }

    println!();
    println!("== Input-count sweep: where does CNFET beat Flash? ==");
    println!("(cells: CNFET wins iff inputs > outputs; cell areas 60 vs 40 L^2)");
    println!("{:>7} {:>8} {:>12}", "inputs", "outputs", "saving");
    for b in mcnc::sweep_family(12, 7) {
        let dims = PlaDimensions {
            inputs: b.on.n_inputs(),
            outputs: b.on.n_outputs(),
            products: b.on.len(),
        };
        let s = cnfet_saving_over(Technology::Flash, dims);
        println!(
            "{:>7} {:>8} {:>+11.1}% {}",
            dims.inputs,
            dims.outputs,
            100.0 * s,
            if s > 0.0 { "CNFET wins" } else { "Flash wins" }
        );
    }
}
