//! The paper's Section 3 example: EXOR from generalized-NOR gates with
//! internal polarity control — `NOR(C1 ⊕ A, C2 ⊕ B)` covers one minterm of
//! XOR per control choice, and the two-plane PLA composes them.
//!
//! Also steps the dynamic (precharge/evaluate) cell explicitly, like
//! Fig. 2.
//!
//! Run: `cargo run --example xor_gnor`

use ambipla::core::{DynamicGnor, GnorGate, GnorPla, InputPolarity::*};
use ambipla::logic::Cover;

fn main() {
    // One GNOR gate computes Ā·B = NOR(A, B̄): C1 = pass, C2 = invert.
    let g1 = GnorGate::new(vec![Pass, Invert]);
    // The sibling computes A·B̄ = NOR(Ā, B): controls swapped.
    let g2 = GnorGate::new(vec![Invert, Pass]);
    println!(
        "gate 1 controls: {:?} (PG charges {:?})",
        g1.controls(),
        g1.pg_levels()
    );
    println!(
        "gate 2 controls: {:?} (PG charges {:?})",
        g2.controls(),
        g2.pg_levels()
    );
    println!();
    println!("| A | B | g1 = A'·B | g2 = A·B' | OR = XOR |");
    println!("|---|---|-----------|-----------|----------|");
    for bits in 0..4u8 {
        let x = [bits & 1 == 1, bits >> 1 & 1 == 1];
        let y1 = g1.evaluate(&x);
        let y2 = g2.evaluate(&x);
        println!(
            "| {} | {} | {:^9} | {:^9} | {:^8} |",
            u8::from(x[0]),
            u8::from(x[1]),
            u8::from(y1),
            u8::from(y2),
            u8::from(y1 || y2)
        );
        assert_eq!(y1 || y2, x[0] ^ x[1]);
    }

    // The same thing as a full two-plane PLA.
    let xor = Cover::parse("10 1\n01 1", 2, 1).expect("valid cover");
    let pla = GnorPla::from_cover(&xor);
    assert!(pla.implements(&xor));
    println!();
    println!(
        "two-plane GNOR PLA: {} with {} programmed devices",
        pla.dimensions(),
        pla.active_devices()
    );

    // Dynamic-logic stepping of one gate, Fig. 2 style.
    let mut cell = DynamicGnor::new(g1);
    let inputs = [false, true]; // A=0, B=1 → g1 fires
    cell.clock(false, &inputs); // precharge
    println!("\nprecharge: output = {}", cell.output());
    cell.clock(true, &inputs); // evaluate
    println!("evaluate : output = {} (A'·B with A=0, B=1)", cell.output());
    assert!(cell.output());
}
