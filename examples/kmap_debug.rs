//! Debugging view: watch ESPRESSO minimize a function on Karnaugh maps,
//! then check the GNOR mapping cell by cell.
//!
//! Run: `cargo run -p ambipla --example kmap_debug`

use ambipla::core::{GnorPla, Simulator};
use ambipla::logic::kmap::render_kmap;
use ambipla::logic::{espresso_with_dc, Cover};

fn main() {
    // A messy 4-variable single-output function with don't-cares.
    let on =
        Cover::parse("0000 1\n0001 1\n0011 1\n0010 1\n1000 1\n1001 1", 4, 1).expect("valid cover");
    let dc = Cover::parse("1100 1\n1101 1", 4, 1).expect("valid cover");

    println!("== ON/DC Karnaugh map (d = don't care) ==");
    println!("{}", render_kmap(&on, Some(&dc), 0).expect("4-var map"));

    let (min, stats) = espresso_with_dc(&on, &dc);
    println!(
        "espresso: {} cubes / {} literals  ->  {} cubes / {} literals",
        stats.initial_cubes, stats.initial_literals, stats.final_cubes, stats.final_literals
    );
    println!();
    println!("== minimized cover ==");
    print!("{min}");
    println!();
    println!("== minimized function on the map ==");
    println!("{}", render_kmap(&min, None, 0).expect("4-var map"));

    let pla = GnorPla::from_cover(&min);
    println!(
        "GNOR PLA: {} with {} programmed devices; implements ON-set: {}",
        pla.dimensions(),
        pla.active_devices(),
        // The minimized cover may use DC points, so check ON containment.
        (0..16u64).all(|b| !on.eval_bits(b)[0] || pla.simulate_bits(b)[0])
    );
}
