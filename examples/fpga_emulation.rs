//! The Table 2 experiment as an API walkthrough: place and route one
//! circuit on a standard FPGA and on the emulated CNFET-PLA FPGA, then
//! compare occupancy, routing load and frequency.
//!
//! Run: `cargo run --example fpga_emulation --release`

use ambipla::fpga::{emulate, Circuit, FpgaArch, FpgaFlavor};

fn main() {
    let circuit = Circuit::random(63, 3, 0.95, 11);
    println!(
        "circuit: {} blocks, {} logical nets, signal reduction x{:.2} for GNOR CLBs",
        circuit.n_blocks(),
        circuit.nets().len(),
        1.0 / circuit.signal_reduction()
    );

    // Die sized so the standard FPGA is ~99 % full (the paper's setup).
    let arch = FpgaArch::sized_for(circuit.n_blocks(), 0.99);
    println!(
        "die: {}x{} tiles, {} routing tracks per channel",
        arch.grid, arch.grid, arch.channel_capacity
    );
    println!();

    for flavor in [FpgaFlavor::Standard, FpgaFlavor::CnfetPla] {
        let r = emulate(&circuit, &arch, flavor, 11);
        println!("{flavor:?}:");
        println!("  occupancy : {:>6.1}%", r.occupancy_percent());
        println!("  frequency : {:>6.0} MHz", r.frequency_mhz());
        println!("  routed    : {:>6} connections", r.routed_connections);
        println!("  wirelength: {:>6} segments", r.wirelength);
        println!("  overused  : {:>6} segments", r.overused_segments);
        println!();
    }
    println!("Paper (Table 2): 99% / 44.9% occupied, 154 / 349 MHz.");
}
