//! Sequential logic on the GNOR PLA: a 3-bit enabled counter as an FSM
//! kernel (next-state + carry logic in the array, state register closing
//! the loop), minimized by ESPRESSO and priced by the Table 1 model.
//!
//! Run: `cargo run -p ambipla --example fsm_counter`

use ambipla::core::fsm::{counter_cover, PlaFsm};
use ambipla::core::Technology;
use ambipla::logic::espresso;

fn main() {
    let kernel = counter_cover(3);
    let (min, stats) = espresso(&kernel);
    println!(
        "counter kernel: {} -> {} product terms after espresso",
        stats.initial_cubes, stats.final_cubes
    );

    let mut fsm = PlaFsm::new(&min, 1, 3).expect("valid FSM");
    let dims = fsm.dimensions();
    println!(
        "PLA kernel {dims}: CNFET {} L^2 vs Flash {} L^2 (state rails saved twice)",
        Technology::CnfetGnor.pla_area(dims),
        Technology::Flash.pla_area(dims),
    );
    println!();
    println!("| cycle | en | state | carry |");
    println!("|-------|----|-------|-------|");
    let enables = [1u64, 1, 0, 1, 1, 1, 1, 1, 1, 1];
    for (cycle, &en) in enables.iter().enumerate() {
        let before = fsm.state();
        let carry = fsm.step(en);
        println!(
            "| {cycle:>5} | {en}  | {before} -> {} | {carry:>5} |",
            fsm.state()
        );
    }
    assert_eq!(fsm.state(), (enables.iter().sum::<u64>()) % 8);
    println!();
    println!("State advanced by exactly the number of enabled cycles (mod 8).");
}
